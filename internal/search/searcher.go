package search

import (
	"errors"
	"fmt"
	"sort"
)

// errNoFeasible is returned when no index in the space evaluates to a
// valid candidate (e.g. every point overflows SPM).
var errNoFeasible = errors.New("search: no feasible candidate found in space")

// Point is one evaluated (compiled + analytically estimated + featurized)
// schedule candidate, identified by its stable streaming index.
type Point struct {
	Index    int
	Features []float64
	// Estimate is the analytic cost-model prediction in seconds — the
	// searcher's ranking signal until the learned model is warm.
	Estimate float64
}

// Measured is one ledger entry: a candidate that was actually run.
type Measured struct {
	Index   int
	Seconds float64
}

// Problem is everything a Searcher needs to optimize one schedule space.
// The searcher never touches internal/schedule or internal/exec directly —
// the tuner (internal/autotune) closes over them, keeping the search
// algorithms testable against synthetic spaces.
type Problem struct {
	// Radices is the mixed-radix shape of the space, most significant digit
	// first (schedule.Dims.Radices). The space size is the product.
	Radices []int
	// Size is the number of points in the space.
	Size int
	// Budget is the maximum number of candidates Measure may consume in
	// total. Searchers stop once it is exhausted.
	Budget int
	// Seed drives every random choice the searcher makes.
	Seed uint64
	// Seeds are transfer-seeded starting indices (nearest-neighbor winners
	// from the cache library mapped into this space). May be empty.
	Seeds []int
	// Eval compiles and featurizes the candidate at a streaming index
	// without running it. ok=false marks an invalid candidate (SPM
	// overflow, lowering failure) — searchers treat those as infeasible.
	Eval func(index int) (pt Point, ok bool)
	// Measure runs a batch of candidates and returns one entry per index
	// that produced a valid measurement, sorted by index. Implementations
	// own parallelism; the sorted return order is what keeps the search
	// deterministic across worker counts.
	Measure func(indices []int) []Measured
	// Report, when non-nil, is called after every round with cumulative
	// progress — the tuner maps it onto metrics and obsrv events.
	Report func(RoundInfo)
}

// RoundInfo is cumulative search progress after one
// propose→predict→measure→learn round.
type RoundInfo struct {
	Round       int     // 1-based completed round
	Proposed    int     // candidates proposed (evaluated) so far
	Pruned      int     // proposed but not measured (model said no)
	MeasuredN   int     // candidates measured so far
	BestIndex   int     // best index so far (-1 before first measurement)
	BestSeconds float64 // best measured seconds so far
	ModelMAE    float64 // prequential MAE of the learned model, seconds
	Converged   bool    // set on the final report when patience ran out
}

// Result is the outcome of a search.
type Result struct {
	// BestIndex/BestSeconds identify the fastest measured candidate,
	// ties broken by the lower index.
	BestIndex   int
	BestSeconds float64
	// Ledger lists every measured candidate in measurement order (batches
	// in round order, each batch sorted by index) — the reproducibility
	// record the determinism contract pins.
	Ledger []Measured
	// Proposed counts candidates the searcher evaluated (compiled +
	// predicted); Rounds counts measure rounds; Converged reports whether
	// the searcher stopped early because progress stalled (as opposed to
	// running out of budget).
	Proposed  int
	Rounds    int
	Converged bool
	// ModelMAE is the final prequential MAE of the learned model.
	ModelMAE float64
}

// Searcher explores a Problem under its budget.
type Searcher interface {
	// Name is the stable CLI identifier ("evo", "anneal").
	Name() string
	// Search runs the loop. It must be deterministic: the same Problem
	// (radices, budget, seed, seeds, and Eval/Measure behavior) yields the
	// same Result regardless of how Measure parallelizes internally.
	Search(p *Problem) (Result, error)
}

// rng is a splitmix64 generator — tiny, fast and deterministic across
// platforms, so search runs reproduce exactly from their seed.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed ^ 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// float64 returns a uniform float in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

func (p *Problem) validate() error {
	if p.Size <= 0 {
		return fmt.Errorf("search: empty space")
	}
	if p.Eval == nil || p.Measure == nil {
		return fmt.Errorf("search: Problem needs Eval and Measure")
	}
	if p.Budget <= 0 {
		return fmt.Errorf("search: budget must be positive, got %d", p.Budget)
	}
	return nil
}

// BudgetFor converts a fractional budget (e.g. 0.10 = measure at most 10%
// of the space) into an absolute candidate count, clamped to [min(12,size),
// size]. The fraction truncates — a 0.10 budget never exceeds 10% of the
// space — and the floor of 12 keeps tiny spaces measuring enough points for
// the online model to become Ready (it needs FeatureLen/2+3 = 11 samples).
func BudgetFor(frac float64, size int) int {
	if size <= 0 {
		return 0
	}
	b := int(frac * float64(size))
	floor := 12
	if floor > size {
		floor = size
	}
	if b < floor {
		b = floor
	}
	if b > size {
		b = size
	}
	return b
}

// tracker is the shared bookkeeping of both searchers: the evaluated-point
// memo, the learned model, the measured ledger and the running best.
type tracker struct {
	p        *Problem
	model    *Model
	points   map[int]Point // Eval memo (valid points only)
	invalid  map[int]bool  // Eval memo (invalid indices)
	measured map[int]float64
	ledger   []Measured
	best     Measured
	proposed int
	rounds   int
}

func newTracker(p *Problem) *tracker {
	return &tracker{
		p:        p,
		model:    NewModel(FeatureLen, 0),
		points:   map[int]Point{},
		invalid:  map[int]bool{},
		measured: map[int]float64{},
		best:     Measured{Index: -1},
	}
}

// eval memoizes Problem.Eval and counts proposals.
func (t *tracker) eval(idx int) (Point, bool) {
	if pt, ok := t.points[idx]; ok {
		return pt, true
	}
	if t.invalid[idx] {
		return Point{}, false
	}
	pt, ok := t.p.Eval(idx)
	t.proposed++
	if !ok {
		t.invalid[idx] = true
		return Point{}, false
	}
	pt.Index = idx
	t.points[idx] = pt
	return pt, true
}

// predict scores a point with the learned model once warm, the analytic
// estimate before that.
func (t *tracker) predict(pt Point) float64 {
	if t.model.Ready() {
		return t.model.Predict(pt.Features)
	}
	return pt.Estimate
}

// remaining returns the unexhausted measurement budget.
func (t *tracker) remaining() int { return t.p.Budget - len(t.ledger) }

// measure runs one batch (deduped, budget-clamped, sorted by index), feeds
// the results to the model and updates the ledger and best. It returns
// whether any measurement improved the best.
func (t *tracker) measure(indices []int) bool {
	batch := make([]int, 0, len(indices))
	seen := map[int]bool{}
	for _, idx := range indices {
		_, done := t.measured[idx]
		if !seen[idx] && !done && !t.invalid[idx] {
			seen[idx] = true
			batch = append(batch, idx)
		}
	}
	sort.Ints(batch)
	if rem := t.remaining(); len(batch) > rem {
		batch = batch[:rem]
	}
	if len(batch) == 0 {
		return false
	}
	t.rounds++
	improved := false
	for _, m := range t.p.Measure(batch) {
		t.measured[m.Index] = m.Seconds
		t.ledger = append(t.ledger, m)
		if pt, ok := t.points[m.Index]; ok {
			t.model.Fit(pt.Features, m.Seconds)
		}
		if t.best.Index < 0 || m.Seconds < t.best.Seconds ||
			(m.Seconds == t.best.Seconds && m.Index < t.best.Index) {
			if t.best.Index < 0 || m.Seconds < t.best.Seconds {
				improved = true
			}
			t.best = m
		}
	}
	return improved
}

// report invokes the Problem's progress hook.
func (t *tracker) report(converged bool) {
	if t.p.Report == nil {
		return
	}
	t.p.Report(RoundInfo{
		Round:       t.rounds,
		Proposed:    t.proposed,
		Pruned:      t.proposed - len(t.ledger),
		MeasuredN:   len(t.ledger),
		BestIndex:   t.best.Index,
		BestSeconds: t.best.Seconds,
		ModelMAE:    t.model.MAE(),
		Converged:   converged,
	})
}

// result freezes the tracker into a Result.
func (t *tracker) result(converged bool) (Result, error) {
	if t.best.Index < 0 {
		return Result{}, fmt.Errorf("search: no candidate produced a valid measurement")
	}
	return Result{
		BestIndex:   t.best.Index,
		BestSeconds: t.best.Seconds,
		Ledger:      t.ledger,
		Proposed:    t.proposed,
		Rounds:      t.rounds,
		Converged:   converged,
		ModelMAE:    t.model.MAE(),
	}, nil
}

// candidate pairs an evaluated point with its current prediction for
// ranking. Ties break by index so ranking is total and deterministic.
type candidate struct {
	pt   Point
	pred float64
}

func rankCandidates(cands []candidate) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].pred != cands[j].pred {
			return cands[i].pred < cands[j].pred
		}
		return cands[i].pt.Index < cands[j].pt.Index
	})
}

// selectBatch picks up to n candidates from the ranked list: the top share
// by prediction plus an ε share drawn uniformly from the rest (ε-greedy
// exploration keeps the model from tunnel vision). cands must already be
// ranked.
func selectBatch(cands []candidate, n int, epsilon float64, r *rng) []int {
	if n > len(cands) {
		n = len(cands)
	}
	if n <= 0 {
		return nil
	}
	explore := int(epsilon * float64(n))
	exploit := n - explore
	out := make([]int, 0, n)
	for i := 0; i < exploit; i++ {
		out = append(out, cands[i].pt.Index)
	}
	// Explore: uniform picks from the unexploited tail, without
	// replacement (Fisher–Yates over a copy of the tail positions).
	tail := make([]int, 0, len(cands)-exploit)
	for i := exploit; i < len(cands); i++ {
		tail = append(tail, cands[i].pt.Index)
	}
	for i := 0; i < explore && len(tail) > 0; i++ {
		j := r.intn(len(tail))
		out = append(out, tail[j])
		tail[j] = tail[len(tail)-1]
		tail = tail[:len(tail)-1]
	}
	return out
}
