package search

import (
	"math"
	"testing"
)

// TestModelLearnsLinearTarget: the ridge regressor must recover a simple
// monotone relationship well enough to rank candidates.
func TestModelLearnsLinearTarget(t *testing.T) {
	m := NewModel(3, 0)
	r := newRNG(7)
	gen := func() ([]float64, float64) {
		f := []float64{r.float64() * 10, r.float64() * 2, r.float64()}
		// log-linear target: seconds = exp(0.3·f0 − 0.5·f1 + 0.1)
		return f, math.Exp(0.3*f[0] - 0.5*f[1] + 0.1)
	}
	for i := 0; i < 200; i++ {
		f, y := gen()
		m.Fit(f, y)
	}
	if m.Count() != 200 {
		t.Fatalf("Count = %d", m.Count())
	}
	if !m.Ready() {
		t.Fatal("model not ready after 200 samples")
	}
	// Rank check on fresh pairs: the faster point must predict faster.
	good, total := 0, 0
	for i := 0; i < 100; i++ {
		fa, ya := gen()
		fb, yb := gen()
		if math.Abs(ya-yb)/math.Max(ya, yb) < 0.05 {
			continue // too close to call
		}
		total++
		if (m.Predict(fa) < m.Predict(fb)) == (ya < yb) {
			good++
		}
	}
	if total == 0 || float64(good)/float64(total) < 0.9 {
		t.Fatalf("rank accuracy %d/%d", good, total)
	}
	if m.MAE() <= 0 {
		t.Fatalf("prequential MAE = %v, want > 0", m.MAE())
	}
}

// TestModelDeterminism: identical Fit sequences yield identical predictions.
func TestModelDeterminism(t *testing.T) {
	build := func() *Model {
		m := NewModel(4, 0)
		r := newRNG(42)
		for i := 0; i < 50; i++ {
			f := []float64{r.float64(), r.float64(), r.float64(), r.float64()}
			m.Fit(f, 1+r.float64())
		}
		return m
	}
	a, b := build(), build()
	probe := []float64{0.3, 0.7, 0.1, 0.9}
	if a.Predict(probe) != b.Predict(probe) {
		t.Fatalf("nondeterministic: %v vs %v", a.Predict(probe), b.Predict(probe))
	}
	if a.MAE() != b.MAE() {
		t.Fatalf("nondeterministic MAE: %v vs %v", a.MAE(), b.MAE())
	}
}

// TestModelRejectsGarbage: non-finite targets and wrong-length vectors are
// ignored, and predictions stay finite regardless.
func TestModelRejectsGarbage(t *testing.T) {
	m := NewModel(2, 0)
	m.Fit([]float64{1, 2}, math.NaN())
	m.Fit([]float64{1, 2}, math.Inf(1))
	m.Fit([]float64{1, 2}, -1)
	m.Fit([]float64{1}, 5)
	if m.Count() != 0 {
		t.Fatalf("garbage fitted: Count = %d", m.Count())
	}
	for i := 0; i < 20; i++ {
		m.Fit([]float64{float64(i), float64(i % 3)}, float64(1+i))
	}
	p := m.Predict([]float64{1e9, -1e9})
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Fatalf("prediction not finite: %v", p)
	}
}

// TestBudgetFor pins the fraction→count clamping.
func TestBudgetFor(t *testing.T) {
	cases := []struct {
		frac float64
		size int
		want int
	}{
		{0.10, 1000, 100},
		{0.10, 50, 12},  // floor
		{0.10, 10, 10},  // floor capped at size
		{1.5, 100, 100}, // cap at size
		{0.10, 129, 12}, // truncates: never exceeds the fraction
		{0.10, 0, 0},
	}
	for _, c := range cases {
		if got := BudgetFor(c.frac, c.size); got != c.want {
			t.Errorf("BudgetFor(%v, %d) = %d, want %d", c.frac, c.size, got, c.want)
		}
	}
}
