package search

import (
	"math"
	"sort"
	"testing"

	"swatop/internal/costmodel"
	"swatop/internal/exec"
	"swatop/internal/gemm"
	"swatop/internal/schedule"
)

// TestAnalyticEstimateRankCorrelation guards the search's cold-start
// ranking signal (and features 8-11 of the vector): on a sampled gemm
// schedule space, the analytic cost-model estimate must rank candidates
// close to their measured seconds — Spearman ρ ≥ 0.7. If this decays, the
// searcher's first measurement batches turn random and sample efficiency
// dies silently.
func TestAnalyticEstimateRankCorrelation(t *testing.T) {
	model, err := costmodel.FitGemmModel()
	if err != nil {
		t.Fatal(err)
	}
	op, err := gemm.NewOp(gemm.Params{M: 512, N: 512, K: 512})
	if err != nil {
		t.Fatal(err)
	}
	dims, err := schedule.Describe(op.Seed(), op.Space())
	if err != nil {
		t.Fatal(err)
	}
	size := dims.Size()
	if size < 40 {
		t.Fatalf("gemm space too small to sample: %d", size)
	}
	// Deterministic stratified sample: every size/60-th point.
	stride := size / 60
	if stride < 1 {
		stride = 1
	}
	var est, meas []float64
	for idx := 0; idx < size && len(est) < 60; idx += stride {
		st := dims.At(idx)
		prog, cerr := op.Compile(st)
		if cerr != nil {
			continue // infeasible point
		}
		e, eerr := costmodel.EstimateProgram(model, prog)
		if eerr != nil {
			t.Fatalf("estimate %s: %v", st, eerr)
		}
		binds, berr := exec.BindVirtual(prog)
		if berr != nil {
			t.Fatalf("bind %s: %v", st, berr)
		}
		r, rerr := exec.Run(prog, binds, exec.Options{FastLoops: true})
		if rerr != nil {
			t.Fatalf("run %s: %v", st, rerr)
		}
		est = append(est, e.Total())
		meas = append(meas, r.Seconds)
	}
	if len(est) < 20 {
		t.Fatalf("only %d feasible samples", len(est))
	}
	rho := spearman(est, meas)
	t.Logf("spearman(analytic, measured) = %.3f over %d samples", rho, len(est))
	if rho < 0.7 {
		t.Fatalf("rank correlation %.3f < 0.7 — the analytic estimate no longer ranks candidates", rho)
	}
}

// spearman computes the Spearman rank correlation coefficient with
// average-rank tie handling.
func spearman(a, b []float64) float64 {
	ra, rb := ranks(a), ranks(b)
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	n := float64(len(ra))
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return v[idx[i]] < v[idx[j]] })
	out := make([]float64, len(v))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j) / 2
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}
