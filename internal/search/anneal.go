package search

import "math"

// Annealing is the simulated-annealing searcher: several independent chains
// random-walk the mixed-radix index space by single-digit moves, accepting
// uphill steps with Metropolis probability exp(−Δ/T) on *predicted* seconds
// (learned model once warm, analytic estimate before). Each round the
// chains' current states are batch-measured, the measurements train the
// model, and the temperature cools geometrically. Chains restart from the
// global best when they wander somewhere the model considers hopeless.
type Annealing struct {
	// Chains is the number of parallel annealing walks. 0 defaults to 4.
	Chains int
	// StepsPerRound is how many proposal steps each chain takes between
	// measure rounds. 0 defaults to 8.
	StepsPerRound int
	// BatchSize caps how many candidates each round measures (the chains'
	// current states, deduped). 0 defaults to Chains.
	BatchSize int
	// Cooling is the per-round temperature multiplier. 0 defaults to 0.85.
	Cooling float64
	// InitTemp is the starting temperature on the relative-slowdown scale
	// (see metropolis). 0 defaults to 0.5.
	InitTemp float64
	// Patience is how many consecutive rounds without improvement end the
	// search. 0 defaults to 5.
	Patience int
}

// Name implements Searcher.
func (a *Annealing) Name() string { return "anneal" }

func (a *Annealing) defaults() Annealing {
	d := *a
	if d.Chains <= 0 {
		d.Chains = 4
	}
	if d.StepsPerRound <= 0 {
		d.StepsPerRound = 8
	}
	if d.BatchSize <= 0 {
		d.BatchSize = d.Chains
	}
	if d.Cooling <= 0 {
		d.Cooling = 0.85
	}
	if d.InitTemp <= 0 {
		d.InitTemp = 0.5
	}
	if d.Patience <= 0 {
		d.Patience = 5
	}
	return d
}

// chain is one annealing walk.
type chain struct {
	cur  Point
	pred float64
}

// Search implements Searcher.
func (a *Annealing) Search(p *Problem) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	cfg := a.defaults()
	r := newRNG(p.Seed)
	t := newTracker(p)
	radices := p.Radices

	// Start chains on transfer seeds, then random feasible points.
	chains := make([]chain, 0, cfg.Chains)
	used := map[int]bool{}
	start := func(idx int) {
		if used[idx] || len(chains) >= cfg.Chains {
			return
		}
		if pt, ok := t.eval(idx); ok {
			used[idx] = true
			chains = append(chains, chain{cur: pt, pred: t.predict(pt)})
		}
	}
	for _, idx := range p.Seeds {
		if idx >= 0 && idx < p.Size {
			start(idx)
		}
	}
	for tries := 0; len(chains) < cfg.Chains && tries < 40*cfg.Chains; tries++ {
		start(r.intn(p.Size))
	}
	if len(chains) == 0 {
		return Result{}, errNoFeasible
	}

	// Measure the starting states to seed the model, then anneal.
	first := make([]int, 0, len(chains))
	for _, c := range chains {
		first = append(first, c.cur.Index)
	}
	t.measure(first)
	t.report(false)

	// Temperature is dimensionless: metropolis normalizes Δ by the current
	// energy, so InitTemp≈0.5 means a 50% slowdown is accepted with
	// probability 1/e at the start.
	temp := cfg.InitTemp

	stall := 0
	for t.remaining() > 0 && stall < cfg.Patience {
		for ci := range chains {
			for s := 0; s < cfg.StepsPerRound; s++ {
				digits := digitsOf(chains[ci].cur.Index, radices)
				// Single-digit move: pick a digit with >1 choice, step it.
				d := r.intn(len(radices))
				for probe := 0; radices[d] <= 1 && probe < len(radices); probe++ {
					d = (d + 1) % len(radices)
				}
				if radices[d] <= 1 {
					continue
				}
				nd := r.intn(radices[d] - 1)
				if nd >= digits[d] {
					nd++ // uniform over the other choices
				}
				digits[d] = nd
				idx := indexOf(digits, radices)
				pt, ok := t.eval(idx)
				if !ok {
					continue
				}
				pred := t.predict(pt)
				delta := pred - chains[ci].pred
				if delta <= 0 || r.float64() < metropolis(delta, temp, chains[ci].pred) {
					chains[ci] = chain{cur: pt, pred: pred}
				}
			}
		}
		batch := make([]int, 0, cfg.BatchSize)
		for _, c := range chains {
			if len(batch) < cfg.BatchSize {
				batch = append(batch, c.cur.Index)
			}
		}
		if t.measure(batch) {
			stall = 0
		} else {
			stall++
		}
		converged := stall >= cfg.Patience
		t.report(converged)
		temp *= cfg.Cooling
		// Re-predict chain states with the freshly fitted model, and pull
		// stragglers back to the measured best so cold chains keep
		// contributing near the optimum.
		for ci := range chains {
			chains[ci].pred = t.predict(chains[ci].cur)
			if bestPt, ok := t.points[t.best.Index]; ok && chains[ci].pred > 4*t.best.Seconds {
				chains[ci] = chain{cur: bestPt, pred: t.predict(bestPt)}
			}
		}
	}
	return t.result(stall >= cfg.Patience)
}

// metropolis is exp(−Δ/(T·E)) — the uphill-acceptance probability with the
// current energy folded into the denominator, so acceptance behaves the
// same for microsecond GEMMs and second-long convolutions.
func metropolis(delta, temp, cur float64) float64 {
	if temp <= 0 || cur <= 0 {
		return 0
	}
	x := delta / (cur * temp)
	if x > 30 {
		return 0
	}
	return math.Exp(-x)
}
