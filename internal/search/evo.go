package search

import "sort"

// Evolutionary is the genetic searcher: a population of schedule points
// breeds offspring by digit-wise crossover and mutation over the
// mixed-radix index space, the learned model (analytic estimate until the
// model is warm) ranks the offspring, and only the top predictions — plus
// an ε-greedy exploration share — are measured for real. Measured times
// train the model, the fittest measured points form the next generation's
// parents, and the loop converges when Patience rounds pass without
// improvement or the budget runs out.
type Evolutionary struct {
	// Population is the parent-pool size. 0 defaults to 24.
	Population int
	// BatchSize is how many candidates each round measures. 0 defaults to
	// 8 (one launch-overhead charge buys eight measurements).
	BatchSize int
	// OffspringPerRound is how many children are bred and predicted each
	// round. 0 defaults to 4× BatchSize.
	OffspringPerRound int
	// Epsilon is the exploration fraction of each measured batch drawn
	// uniformly instead of by predicted rank. 0 defaults to 0.15.
	Epsilon float64
	// MutationRate is the per-digit mutation probability applied to every
	// child after crossover. 0 defaults to 0.25.
	MutationRate float64
	// Patience is how many consecutive rounds without a new best the
	// searcher tolerates before declaring convergence. 0 defaults to 4.
	Patience int
}

// Name implements Searcher.
func (e *Evolutionary) Name() string { return "evo" }

func (e *Evolutionary) defaults() Evolutionary {
	d := *e
	if d.Population <= 0 {
		d.Population = 24
	}
	if d.BatchSize <= 0 {
		d.BatchSize = 8
	}
	if d.OffspringPerRound <= 0 {
		d.OffspringPerRound = 4 * d.BatchSize
	}
	if d.Epsilon <= 0 {
		d.Epsilon = 0.15
	}
	if d.MutationRate <= 0 {
		d.MutationRate = 0.25
	}
	if d.Patience <= 0 {
		d.Patience = 4
	}
	return d
}

// Search implements Searcher.
func (e *Evolutionary) Search(p *Problem) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	cfg := e.defaults()
	r := newRNG(p.Seed)
	t := newTracker(p)
	radices := p.Radices

	// Generation zero: transfer seeds first (cached winners of neighboring
	// shapes mapped into this space), then uniform random points until the
	// population is full. Invalid points are skipped; the attempt cap keeps
	// degenerate spaces (almost everything infeasible) from spinning.
	var pool []candidate
	inPool := map[int]bool{}
	add := func(idx int) {
		if inPool[idx] {
			return
		}
		if pt, ok := t.eval(idx); ok {
			inPool[idx] = true
			pool = append(pool, candidate{pt: pt, pred: t.predict(pt)})
		}
	}
	for _, idx := range p.Seeds {
		if idx >= 0 && idx < p.Size {
			add(idx)
		}
	}
	for tries := 0; len(pool) < cfg.Population && tries < 20*cfg.Population; tries++ {
		add(r.intn(p.Size))
	}
	if len(pool) == 0 {
		return Result{}, errNoFeasible
	}

	// First batch: measure the best-estimated points of generation zero so
	// the model has training data before any breeding happens.
	rankCandidates(pool)
	first := make([]int, 0, cfg.BatchSize)
	for i := 0; i < len(pool) && i < cfg.BatchSize; i++ {
		first = append(first, pool[i].pt.Index)
	}
	t.measure(first)
	t.report(false)

	stall := 0
	for t.remaining() > 0 && stall < cfg.Patience {
		parents := t.parents(cfg.Population)
		if len(parents) == 0 {
			parents = pool
		}
		// Breed. Parent choice is rank-biased (min of two uniform draws),
		// crossover is uniform per digit, then per-digit mutation.
		offspring := make([]candidate, 0, cfg.OffspringPerRound)
		offSeen := map[int]bool{}
		for b := 0; b < 4*cfg.OffspringPerRound && len(offspring) < cfg.OffspringPerRound; b++ {
			pa := parents[minInt(r.intn(len(parents)), r.intn(len(parents)))]
			pb := parents[minInt(r.intn(len(parents)), r.intn(len(parents)))]
			da := digitsOf(pa.pt.Index, radices)
			db := digitsOf(pb.pt.Index, radices)
			child := make([]int, len(da))
			for i := range child {
				if r.float64() < 0.5 {
					child[i] = da[i]
				} else {
					child[i] = db[i]
				}
				if r.float64() < cfg.MutationRate {
					child[i] = r.intn(radices[i])
				}
			}
			idx := indexOf(child, radices)
			if offSeen[idx] || t.alreadyMeasured(idx) {
				continue
			}
			offSeen[idx] = true
			if pt, ok := t.eval(idx); ok {
				offspring = append(offspring, candidate{pt: pt, pred: t.predict(pt)})
			}
		}
		if len(offspring) == 0 {
			// The population has inbred to a corner; reseed randomly.
			for tries := 0; len(offspring) < cfg.BatchSize && tries < 10*cfg.BatchSize; tries++ {
				idx := r.intn(p.Size)
				if offSeen[idx] || t.alreadyMeasured(idx) {
					continue
				}
				offSeen[idx] = true
				if pt, ok := t.eval(idx); ok {
					offspring = append(offspring, candidate{pt: pt, pred: t.predict(pt)})
				}
			}
			if len(offspring) == 0 {
				break // space exhausted
			}
		}
		rankCandidates(offspring)
		batch := selectBatch(offspring, cfg.BatchSize, cfg.Epsilon, r)
		if t.measure(batch) {
			stall = 0
		} else {
			stall++
		}
		converged := stall >= cfg.Patience
		t.report(converged)
		// Refresh pool predictions with the newly fitted model and fold in
		// the offspring, so next round's parents reflect what was learned.
		pool = append(pool, offspring...)
		for i := range pool {
			pool[i].pred = t.predict(pool[i].pt)
		}
	}
	return t.result(stall >= cfg.Patience)
}

// parents returns the measured elite, fastest first — the breeding pool.
func (t *tracker) parents(n int) []candidate {
	elite := make([]Measured, 0, len(t.measured))
	for idx, secs := range t.measured {
		elite = append(elite, Measured{Index: idx, Seconds: secs})
	}
	sort.Slice(elite, func(i, j int) bool {
		if elite[i].Seconds != elite[j].Seconds {
			return elite[i].Seconds < elite[j].Seconds
		}
		return elite[i].Index < elite[j].Index
	})
	if len(elite) > n {
		elite = elite[:n]
	}
	out := make([]candidate, 0, len(elite))
	for _, m := range elite {
		if pt, ok := t.points[m.Index]; ok {
			out = append(out, candidate{pt: pt, pred: m.Seconds})
		}
	}
	return out
}

func (t *tracker) alreadyMeasured(idx int) bool {
	_, ok := t.measured[idx]
	return ok
}

// digitsOf decodes an index into mixed-radix digits, most significant
// first — the pure-int twin of schedule.Dims.Digits, duplicated here so the
// searchers stay decoupled from internal/schedule.
func digitsOf(idx int, radices []int) []int {
	digits := make([]int, len(radices))
	for i := len(radices) - 1; i >= 0; i-- {
		digits[i] = idx % radices[i]
		idx /= radices[i]
	}
	return digits
}

// indexOf re-encodes digits, clamping out-of-radix values.
func indexOf(digits []int, radices []int) int {
	idx := 0
	for i, r := range radices {
		d := digits[i]
		if d < 0 {
			d = 0
		}
		if d >= r {
			d = r - 1
		}
		idx = idx*r + d
	}
	return idx
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
