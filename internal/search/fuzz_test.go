package search

import (
	"math"
	"testing"

	"swatop/internal/costmodel"
	"swatop/internal/gemm"
	"swatop/internal/schedule"
)

// FuzzFeatureVector drives Features with arbitrary schedule-space indices
// and adversarial estimate values: the vector must always come back with
// exactly FeatureLen finite entries — NaN or Inf leaking into the online
// model would silently poison every later prediction.
func FuzzFeatureVector(f *testing.F) {
	op, err := gemm.NewOp(gemm.Params{M: 256, N: 256, K: 256})
	if err != nil {
		f.Fatal(err)
	}
	dims, err := schedule.Describe(op.Seed(), op.Space())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint32(0), 0.0, 0.0, 0.0, 0.0)
	f.Add(uint32(17), 1e-9, 1e9, math.Inf(1), math.NaN())
	f.Add(uint32(99), math.NaN(), math.Inf(-1), -1.0, 1e308)
	f.Fuzz(func(t *testing.T, rawIdx uint32, dma, compute, bytes, txns float64) {
		idx := int(rawIdx) % dims.Size()
		st := dims.At(idx)
		prog, cerr := op.Compile(st)
		if cerr != nil {
			return // infeasible point: nothing to featurize
		}
		est := costmodel.Estimate{DMA: dma, Compute: compute, DMABytes: bytes, DMATransactions: txns}
		vec := Features(op.Seed(), st, prog, est)
		if len(vec) != FeatureLen {
			t.Fatalf("len = %d, want %d", len(vec), FeatureLen)
		}
		for i, v := range vec {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("feature %d not finite: %v (idx %d, est %+v)", i, v, idx, est)
			}
		}
	})
}
