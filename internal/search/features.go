// Package search is swATOP's sample-efficient schedule search: instead of
// enumerating and estimating every point of a schedule space (the walk the
// exhaustive tuner performs), a searcher proposes candidates, predicts them
// with an online-learned cost model, measures only the most promising, and
// feeds the measurements back into the model — the propose→predict→measure→
// learn loop of "Learning to Optimize Tensor Programs" adapted to the
// mixed-radix streaming index space of internal/schedule.
//
// The package has three parts: feature extraction (this file) turns a
// compiled schedule candidate into a fixed-length numeric vector without
// running it; Model (model.go) is a dependency-free online ridge regressor
// over those vectors; Evolutionary and Annealing (evo.go, anneal.go) are
// the searchers driving the loop. Everything is deterministic given a seed:
// the same (seed, budget) always proposes, measures and selects the same
// candidates, independent of the host worker count.
package search

import (
	"math"

	"swatop/internal/costmodel"
	"swatop/internal/dsl"
	"swatop/internal/ir"
)

// FeatureLen is the fixed length of every feature vector. Changing it
// invalidates fitted models, so it is asserted by tests and the fuzzer.
const FeatureLen = 16

// Features featurizes one compiled schedule candidate. The vector is
// computed purely from the strategy, the seed's axis roles and a static
// walk of the lowered program (plus the analytic cost estimate) — the
// candidate is never executed. Magnitude-spanning features are log
// compressed so the ridge regressor sees comparable scales.
//
// Layout (indices are stable; append-only by convention):
//
//	0  log2 tile-factor product of RoleM axes
//	1  log2 tile-factor product of RoleN axes
//	2  log2 tile-factor product of RoleK axes
//	3  log2 tile-factor product of spatial/reduce axes
//	4  log2 iteration-space extent product
//	5  vectorized dimension (0 = VecM, 1 = VecN)
//	6  double buffering (0/1)
//	7  traditional padding (0/1)
//	8  analytic DMA seconds (milliseconds)
//	9  analytic compute seconds (milliseconds)
//	10 log1p predicted DMA payload bytes
//	11 log1p predicted DMA transactions
//	12 log1p peak SPM footprint bytes
//	13 log2 register/tile blocking rows (GEMM primitive M extent)
//	14 log2 register/tile blocking cols (GEMM primitive N extent)
//	15 log1p static DMA operation count
func Features(seed *dsl.Seed, st dsl.Strategy, prog *ir.Program, est costmodel.Estimate) []float64 {
	f := make([]float64, FeatureLen)
	f[0] = log2RoleFactors(seed, st, dsl.RoleM)
	f[1] = log2RoleFactors(seed, st, dsl.RoleN)
	f[2] = log2RoleFactors(seed, st, dsl.RoleK)
	f[3] = log2RoleFactors(seed, st, dsl.RoleSpatial) + log2RoleFactors(seed, st, dsl.RoleReduce)
	extent := 1.0
	for _, ax := range seed.Axes {
		extent *= float64(ax.Extent)
	}
	f[4] = math.Log2(extent)
	if st.Vec == ir.VecN {
		f[5] = 1
	}
	if st.DoubleBuffer {
		f[6] = 1
	}
	if st.Padding == dsl.PadTraditional {
		f[7] = 1
	}
	f[8] = est.DMA * 1e3
	f[9] = est.Compute * 1e3
	f[10] = math.Log1p(est.DMABytes)
	f[11] = math.Log1p(est.DMATransactions)
	w := walkProgram(prog)
	f[12] = math.Log1p(float64(w.peakSPMBytes))
	f[13] = math.Log2(float64(maxInt64(w.gemmM, 1)))
	f[14] = math.Log2(float64(maxInt64(w.gemmN, 1)))
	f[15] = math.Log1p(float64(w.dmaOps))
	for i, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			f[i] = 0
		}
	}
	return f
}

func log2RoleFactors(seed *dsl.Seed, st dsl.Strategy, role dsl.Role) float64 {
	prod := 1.0
	for _, name := range seed.RoleAxes(role) {
		if fct, ok := st.Factors[name]; ok && fct > 0 {
			prod *= float64(fct)
		}
	}
	return math.Log2(prod)
}

// progWalk summarizes one static pass over a lowered program: peak SPM
// footprint, the tile/register blocking shape of the first GEMM primitive
// call, and the static DMA operation count. Loops are entered once at
// iteration 0 — exact for swATOP's nests, whose allocations and GEMM tile
// shapes are loop-invariant (only boundary tiles shrink).
type progWalk struct {
	peakSPMBytes int64
	gemmM, gemmN int64
	dmaOps       int64
}

func walkProgram(p *ir.Program) progWalk {
	w := progWalk{}
	env := ir.Env{}
	var cur int64
	var walk func(body []ir.Stmt)
	walk = func(body []ir.Stmt) {
		for _, s := range body {
			switch x := s.(type) {
			case *ir.AllocSPM:
				cur += x.Elems.Eval(env) * 4
				if cur > w.peakSPMBytes {
					w.peakSPMBytes = cur
				}
			case *ir.FreeSPM:
				// Frees are ignored: cur stays monotone so nested buffer
				// reuse still counts toward the peak, which is the feature.
			case *ir.Assign:
				env[x.Var] = x.Val.Eval(env)
			case *ir.If:
				if x.Cond.Eval(env) {
					walk(x.Then)
				} else {
					walk(x.Else)
				}
			case *ir.For:
				if x.Extent.Eval(env) <= 0 {
					continue
				}
				saved, had := env[x.Iter]
				env[x.Iter] = 0
				walk(x.Body)
				if had {
					env[x.Iter] = saved
				} else {
					delete(env, x.Iter)
				}
			case *ir.Gemm:
				if w.gemmM == 0 {
					w.gemmM = x.M.Eval(env)
					w.gemmN = x.N.Eval(env)
				}
			case *ir.DMAOp, *ir.RegionMove:
				w.dmaOps++
			}
		}
	}
	walk(p.Body)
	return w
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
