package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"swatop/internal/cache"
	"swatop/internal/faults"
	"swatop/internal/metrics"
)

// TestChaosServingUnderFaults is the `make chaos` entry point: the full
// HTTP serving path under concurrent load while the fault injector fails
// half of all tuning measurements and periodically stalls the compute
// pipeline, followed by a DMA-transfer-failure phase. The daemon's
// contract under injected measurement failure is strict:
//
//   - every request is answered with 200 (possibly degraded), 429 (shed)
//     or 408 (deadline) — never a 5xx, never a crash;
//   - degraded responses are flagged, and their count matches the
//     serve_degraded_total counter;
//   - a degraded schedule is never cached (the library holds only ops
//     tuned by runs that completed their measurements);
//   - after the storm, a drain still completes and refuses new work.
//
// Run under -race: the injector fires inside machine goroutines while the
// batcher, breaker and HTTP handlers run concurrently, so this doubles as
// a data-race probe of the whole failure path.
func TestChaosServingUnderFaults(t *testing.T) {
	inj := faults.New(42)
	inj.FailWithProbability(faults.Measure, 0.5, errors.New("chaos: injected measurement failure"))
	inj.StallEveryNth(faults.ComputeStall, 7, 0.002)

	lib := cache.NewLibrary()
	reg := metrics.NewRegistry()
	s, err := New(Config{
		Net:              "tiny",
		Builder:          tinyBuilder,
		MaxBatch:         4,
		BatchWindow:      time.Millisecond,
		QueueDepth:       8,
		Workers:          2,
		BreakerThreshold: 2,
		BreakerCooldown:  2,
		Library:          lib,
		Metrics:          reg,
		Faults:           inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients, perClient = 16, 20
	type tally struct {
		statuses map[int]int
		degraded int
	}
	results := make([]tally, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tl := tally{statuses: map[int]int{}}
			for i := 0; i < perClient; i++ {
				req := Request{ID: fmt.Sprintf("c%d-r%d", c, i)}
				if i%5 == 4 {
					// Every fifth request carries a hopeless deadline so the
					// 408 path runs under chaos too.
					req.DeadlineMs = 0.0001
				}
				body, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				tl.statuses[resp.StatusCode]++
				if resp.StatusCode == http.StatusOK {
					var r Response
					if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
						t.Errorf("client %d: decode: %v", c, err)
					}
					if r.Degraded {
						tl.degraded++
					}
				} else {
					io.Copy(io.Discard, resp.Body)
				}
				resp.Body.Close()
			}
			results[c] = tl
		}(c)
	}
	wg.Wait()

	merged := map[int]int{}
	degraded := 0
	for _, tl := range results {
		for code, n := range tl.statuses {
			merged[code] += n
		}
		degraded += tl.degraded
	}
	for code := range merged {
		switch code {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusRequestTimeout:
		default:
			t.Fatalf("status %d under fault injection (%d times); statuses: %v",
				code, merged[code], merged)
		}
	}
	if merged[http.StatusOK] == 0 {
		t.Fatalf("no request served under chaos: %v", merged)
	}
	if degraded == 0 {
		t.Fatalf("half of all measurements failing produced zero degraded responses: %v", merged)
	}
	if got := int(reg.Counter("serve_degraded_total").Value()); got != degraded {
		t.Fatalf("serve_degraded_total = %d, clients saw %d degraded responses", got, degraded)
	}
	t.Logf("chaos: %v, %d degraded, %d cached schedules, breaker %s (%d trips)",
		merged, degraded, lib.Len(), s.Status().Breaker, s.Status().BreakerTrips)

	// Phase 2: DMA transfer faults. Unlike a measurement failure, a DMA
	// fault during batch execution is a hard error the baseline schedule
	// cannot absorb — so the contract here is weaker but still strict:
	// failed batches answer 500 and charge the breaker, the daemon itself
	// never dies or wedges, and every request gets *an* answer.
	inj.FailEveryNth(faults.DMATransfer, 500, errors.New("chaos: injected DMA failure"))
	dmaStatuses := map[int]int{}
	for i := 0; i < 40; i++ {
		resp, err := http.Post(ts.URL+"/infer", "application/json",
			bytes.NewReader([]byte(fmt.Sprintf(`{"id":"dma-%d"}`, i))))
		if err != nil {
			t.Fatalf("dma phase request %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		dmaStatuses[resp.StatusCode]++
	}
	inj.Disarm(faults.DMATransfer)
	for code := range dmaStatuses {
		switch code {
		case http.StatusOK, http.StatusTooManyRequests,
			http.StatusRequestTimeout, http.StatusInternalServerError:
		default:
			t.Fatalf("status %d under DMA faults: %v", code, dmaStatuses)
		}
	}
	t.Logf("chaos dma phase: %v, breaker %s", dmaStatuses, s.Status().Breaker)

	// The storm must not have poisoned the cache: disarm the faults and
	// keep submitting. If the breaker is open it first spends its cooldown
	// batches degraded, then a probe batch tunes and closes it — recovery
	// must arrive within a handful of batches, every response's degraded
	// flag must match its op counts (a mixed run with cached ops and
	// baseline-fallback ops is degraded; cached ops themselves come only
	// from fully-measured schedules, because degraded runs never Put), and
	// once recovered the run is fully tuned.
	inj.Disarm(faults.Measure)
	inj.Disarm(faults.ComputeStall)
	recovered := false
	for i := 0; i < 12 && !recovered; i++ {
		res, err := s.Submit(context.Background(), Request{ID: fmt.Sprintf("replay-%d", i)})
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if res.Degraded != (res.DegradedOps > 0) {
			t.Fatalf("degraded flag inconsistent with op counts: %+v", res)
		}
		recovered = !res.Degraded
	}
	if !recovered {
		t.Fatal("still serving degraded after the faults cleared")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after chaos: %v", err)
	}
	if _, err := s.Submit(context.Background(), Request{ID: "late"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: %v, want ErrDraining", err)
	}
}
