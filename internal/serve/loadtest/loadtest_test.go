package loadtest

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"swatop/internal/cache"
	"swatop/internal/faults"
	"swatop/internal/graph"
	"swatop/internal/metrics"
	"swatop/internal/serve"
	"swatop/internal/workloads"
)

func tinyBuilder(batch int) (*graph.Graph, error) {
	return graph.Chain("tiny", batch,
		[]workloads.ConvLayer{
			{Net: "tiny", Name: "c1", Ni: 3, No: 16, R: 8, K: 3},
			{Net: "tiny", Name: "c2", Ni: 16, No: 16, R: 8, K: 3},
			{Net: "tiny", Name: "c3", Ni: 16, No: 16, R: 4, K: 3},
		},
		[]workloads.FCLayer{
			{Net: "tiny", Name: "f1", In: 16 * 2 * 2, Out: 32},
			{Net: "tiny", Name: "f2", In: 32, Out: 12},
		})
}

// startServer builds, warms and HTTP-mounts a daemon, with cleanup draining
// it.
func startServer(t *testing.T, cfg serve.Config, warm bool) (*serve.Server, *httptest.Server) {
	t.Helper()
	if cfg.Builder == nil {
		cfg.Builder = tinyBuilder
	}
	if cfg.Net == "" {
		cfg.Net = "tiny"
	}
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		if _, err := s.Warmup(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

func assertNo5xx(t *testing.T, rep *Report) {
	t.Helper()
	for status, n := range rep.Statuses {
		if status >= 500 {
			t.Errorf("%d responses with 5xx status %d", n, status)
		}
	}
	if rep.Errors != 0 {
		t.Errorf("%d transport errors", rep.Errors)
	}
}

// TestLoad2000Concurrent is the headline acceptance run: 2000 requests from
// 32 concurrent closed-loop clients against a warmed daemon, producing a
// p50/p99 latency and shed-rate report. With the queue sized above the
// client count nothing sheds and every request is served.
func TestLoad2000Concurrent(t *testing.T) {
	reg := metrics.NewRegistry()
	_, ts := startServer(t, serve.Config{
		MaxBatch:    8,
		BatchWindow: 500 * time.Microsecond,
		QueueDepth:  64,
		Metrics:     reg,
	}, true)

	rep, err := Run(ts.URL, Options{Clients: 32, Requests: 2000})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	assertNo5xx(t, rep)
	if rep.OK != 2000 {
		t.Fatalf("served %d of 2000 (statuses %v)", rep.OK, rep.Statuses)
	}
	if rep.Degraded != 0 {
		t.Errorf("%d degraded responses on a healthy warmed server", rep.Degraded)
	}
	if rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms {
		t.Errorf("implausible latency report: p50 %.3f p99 %.3f", rep.P50Ms, rep.P99Ms)
	}
	if got := reg.Counter("serve_responses_total").Value(); got != 2000 {
		t.Errorf("serve_responses_total = %d, want 2000", got)
	}
}

// TestLoadOverloadSheds drives 2x the server's capacity (queue + one batch)
// in closed loop: the daemon must shed with 429s and keep serving — and
// never answer 5xx.
func TestLoadOverloadSheds(t *testing.T) {
	// A sleeping builder pins batch wall time at >= 5ms, so the closed-loop
	// burst always finds the queue full.
	slowBuilder := func(b int) (*graph.Graph, error) {
		time.Sleep(5 * time.Millisecond)
		return tinyBuilder(b)
	}
	reg := metrics.NewRegistry()
	const queueDepth, maxBatch = 8, 4
	_, ts := startServer(t, serve.Config{
		Builder:     slowBuilder,
		MaxBatch:    maxBatch,
		BatchWindow: 500 * time.Microsecond,
		QueueDepth:  queueDepth,
		Metrics:     reg,
	}, true)

	capacity := queueDepth + maxBatch
	rep, err := Run(ts.URL, Options{Clients: 2 * capacity, Requests: 600})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	assertNo5xx(t, rep)
	if rep.Shed == 0 {
		t.Fatalf("no sheds at 2x capacity (%d clients): %v", 2*capacity, rep.Statuses)
	}
	if rep.OK == 0 {
		t.Fatal("overloaded server served nothing")
	}
	if rep.OK+rep.Shed+rep.Expired != rep.Total {
		t.Errorf("unaccounted outcomes: %v over %d", rep.Statuses, rep.Total)
	}
	if got := reg.Counter("serve_shed_total").Value(); got != int64(rep.Shed) {
		t.Errorf("serve_shed_total = %d, client saw %d", got, rep.Shed)
	}
}

// TestLoadDrainFinishesInFlight drains the daemon in the middle of a load
// run (the SIGTERM path): every admitted request must still be answered
// 200, later arrivals get 503, and nothing is lost.
func TestLoadDrainFinishesInFlight(t *testing.T) {
	slowBuilder := func(b int) (*graph.Graph, error) {
		time.Sleep(2 * time.Millisecond)
		return tinyBuilder(b)
	}
	reg := metrics.NewRegistry()
	s, ts := startServer(t, serve.Config{
		Builder:     slowBuilder,
		MaxBatch:    4,
		BatchWindow: time.Millisecond,
		QueueDepth:  16,
		Metrics:     reg,
	}, true)

	repCh := make(chan *Report, 1)
	go func() {
		rep, err := Run(ts.URL, Options{Clients: 16, Requests: 800})
		if err != nil {
			t.Error(err)
		}
		repCh <- rep
	}()

	// Let the run get firmly in flight, then pull the plug.
	deadline := time.Now().Add(10 * time.Second)
	for reg.Counter("serve_responses_total").Value() < 50 {
		if time.Now().After(deadline) {
			t.Fatal("load run did not make progress")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain under load: %v", err)
	}

	rep := <-repCh
	if rep == nil {
		t.Fatal("no report")
	}
	t.Logf("\n%s", rep)
	if rep.Errors != 0 {
		t.Errorf("%d transport errors", rep.Errors)
	}
	for status, n := range rep.Statuses {
		switch status {
		case http.StatusOK, http.StatusTooManyRequests,
			http.StatusRequestTimeout, http.StatusServiceUnavailable:
		default:
			t.Errorf("%d responses with unexpected status %d during drain", n, status)
		}
	}
	if rep.Draining == 0 {
		t.Error("no 503s — drain did not overlap the load run")
	}
	// The drain guarantee: everything admitted was answered.
	admitted := reg.Counter("serve_admitted_total").Value()
	answered := reg.Counter("serve_responses_total").Value() +
		reg.Counter("serve_deadline_expired_total").Value()
	if admitted != answered {
		t.Errorf("admitted %d but answered %d — drain dropped in-flight work", admitted, answered)
	}
	if _, err := s.Submit(context.Background(), serve.Request{}); !errors.Is(err, serve.ErrDraining) {
		t.Errorf("post-drain submit error %v, want ErrDraining", err)
	}
}

// TestLoadDegradedFlaggedNeverCached runs the whole HTTP path under total
// measurement failure: every served response must carry the degraded flag
// and the schedule cache must stay empty.
func TestLoadDegradedFlaggedNeverCached(t *testing.T) {
	inj := faults.New(7)
	inj.FailEveryNth(faults.Measure, 1, errors.New("injected measurement failure"))
	lib := cache.NewLibrary()
	s, ts := startServer(t, serve.Config{
		MaxBatch:    4,
		BatchWindow: 500 * time.Microsecond,
		QueueDepth:  32,
		Buckets:     []int{4},
		Library:     lib,
		Faults:      inj,
	}, false) // cold: every batch must tune, and every tune fails

	rep, err := Run(ts.URL, Options{Clients: 8, Requests: 100})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	assertNo5xx(t, rep)
	if rep.OK == 0 {
		t.Fatal("faulted server served nothing — fallback is not serving")
	}
	if rep.Degraded != rep.OK {
		t.Errorf("%d of %d served responses flagged degraded, want all", rep.Degraded, rep.OK)
	}
	if got := lib.Len(); got != 0 {
		t.Errorf("schedule cache has %d entries after degraded-only serving, want 0", got)
	}
	if got := s.Library().Len(); got != 0 {
		t.Errorf("server library has %d entries, want 0", got)
	}
}
