// Package loadtest is a deterministic closed-loop load generator for the
// serving daemon: a fixed number of clients each keep exactly one request
// in flight until a fixed request budget is spent, and every terminal
// status is accounted for. Closed-loop generation makes the offered load a
// pure function of (Clients, server latency) — no random arrival process,
// so the same binary produces the same admission story run over run, up to
// goroutine scheduling.
//
// The Report aggregates what robustness testing needs to assert: a
// latency distribution (p50/p90/p99) over served requests, the shed rate,
// the degraded count, and a guarantee-checking status histogram (overload
// must map to 429/408, never 5xx).
package loadtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"swatop/internal/metrics"
	"swatop/internal/serve"
)

// Options shape one load run.
type Options struct {
	// Clients is the closed-loop concurrency: each client keeps one request
	// in flight (default 8).
	Clients int
	// Requests is the total request budget across all clients (default 100).
	Requests int
	// DeadlineMs is attached to every request (0 = none).
	DeadlineMs float64
	// Timeout bounds each HTTP round trip (default 30s).
	Timeout time.Duration
}

// Report is the aggregate outcome of one run.
type Report struct {
	Total    int           `json:"total"`
	Clients  int           `json:"clients"`
	Wall     time.Duration `json:"wall_ns"`
	Statuses map[int]int   `json:"statuses"`

	// OK counts 200s; Shed 429s; Expired 408s; Draining 503s; Errors
	// transport-level failures (should be zero against a healthy server).
	OK       int `json:"ok"`
	Shed     int `json:"shed"`
	Expired  int `json:"expired"`
	Draining int `json:"draining"`
	Errors   int `json:"errors"`
	// Degraded counts 200s served by the baseline-fallback path.
	Degraded int `json:"degraded"`

	// Latency percentiles over served (200) requests, in milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
	// ShedRate is Shed/Total; ThroughputRPS is OK per wall second.
	ShedRate      float64 `json:"shed_rate"`
	ThroughputRPS float64 `json:"throughput_rps"`

	// Phases attributes where served requests spent their time, per phase
	// as reported by the server (queue wait, batch formation, execution,
	// inter-group communication). The four server-side phases sum to the
	// server-observed latency for every request; PhaseSumErrMax is the
	// largest relative mismatch seen, a consistency check that should stay
	// well under 1%.
	Phases         PhaseReport `json:"phases"`
	PhaseSumErrMax float64     `json:"phase_sum_err_max"`
}

// PhaseReport is the per-phase latency attribution over served requests.
type PhaseReport struct {
	Queue PhaseStats `json:"queue"`
	Batch PhaseStats `json:"batch"`
	Exec  PhaseStats `json:"exec"`
	Comm  PhaseStats `json:"comm"`
}

// PhaseStats are nearest-rank percentiles of one phase, in milliseconds.
type PhaseStats struct {
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// phaseSample is one served request's server-side attribution.
type phaseSample struct {
	queue, batch, exec, comm float64 // ms
	latency                  float64 // server-observed end-to-end ms
}

// clientResult is one worker's tally, merged after the run.
type clientResult struct {
	statuses  map[int]int
	degraded  int
	errors    int
	latencies []float64 // ms, 200s only
	phases    []phaseSample
}

// Run fires opts.Requests at baseURL's /infer endpoint from opts.Clients
// closed-loop workers and aggregates the outcome. It returns an error only
// for misconfiguration — server-side refusals (shed, drain, expiry) are
// data, not errors.
func Run(baseURL string, opts Options) (*Report, error) {
	if opts.Clients < 1 {
		opts.Clients = 8
	}
	if opts.Requests < 1 {
		opts.Requests = 100
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	url := strings.TrimRight(baseURL, "/") + "/infer"
	client := &http.Client{Timeout: opts.Timeout}

	var next atomic.Int64
	results := make([]clientResult, opts.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res := clientResult{statuses: map[int]int{}}
			for {
				n := next.Add(1)
				if n > int64(opts.Requests) {
					break
				}
				req := serve.Request{
					ID:         fmt.Sprintf("load-%d", n),
					DeadlineMs: opts.DeadlineMs,
				}
				status, body, ms, err := fire(client, url, req)
				if err != nil {
					res.errors++
					continue
				}
				res.statuses[status]++
				if status == http.StatusOK {
					res.latencies = append(res.latencies, ms)
					if body.Degraded {
						res.degraded++
					}
					res.phases = append(res.phases, phaseSample{
						queue:   body.QueueMs,
						batch:   body.BatchMs,
						exec:    body.ExecMs,
						comm:    body.CommMs,
						latency: body.LatencyMs,
					})
				}
			}
			results[c] = res
		}(c)
	}
	wg.Wait()
	return merge(results, opts, time.Since(start)), nil
}

// fire sends one request and decodes the terminal status and, on 200, the
// response body (for degraded flags and per-phase attribution).
func fire(client *http.Client, url string, req serve.Request) (status int, r serve.Response, ms float64, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, r, 0, err
	}
	t0 := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, r, 0, err
	}
	defer resp.Body.Close()
	ms = time.Since(t0).Seconds() * 1e3
	if resp.StatusCode == http.StatusOK {
		_ = json.NewDecoder(resp.Body).Decode(&r)
	}
	return resp.StatusCode, r, ms, nil
}

func merge(results []clientResult, opts Options, wall time.Duration) *Report {
	rep := &Report{
		Total:    opts.Requests,
		Clients:  opts.Clients,
		Wall:     wall,
		Statuses: map[int]int{},
	}
	var lats []float64
	var phases []phaseSample
	for _, r := range results {
		for s, n := range r.statuses {
			rep.Statuses[s] += n
		}
		rep.Degraded += r.degraded
		rep.Errors += r.errors
		lats = append(lats, r.latencies...)
		phases = append(phases, r.phases...)
	}
	rep.OK = rep.Statuses[http.StatusOK]
	rep.Shed = rep.Statuses[http.StatusTooManyRequests]
	rep.Expired = rep.Statuses[http.StatusRequestTimeout]
	rep.Draining = rep.Statuses[http.StatusServiceUnavailable]
	if rep.Total > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Total)
	}
	if secs := wall.Seconds(); secs > 0 {
		rep.ThroughputRPS = float64(rep.OK) / secs
	}
	sort.Float64s(lats)
	rep.P50Ms = metrics.Percentile(lats, 50)
	rep.P90Ms = metrics.Percentile(lats, 90)
	rep.P99Ms = metrics.Percentile(lats, 99)
	if n := len(lats); n > 0 {
		rep.MaxMs = lats[n-1]
	}
	queue := make([]float64, 0, len(phases))
	batch := make([]float64, 0, len(phases))
	exec := make([]float64, 0, len(phases))
	comm := make([]float64, 0, len(phases))
	for _, p := range phases {
		queue = append(queue, p.queue)
		batch = append(batch, p.batch)
		exec = append(exec, p.exec)
		comm = append(comm, p.comm)
		if p.latency > 0 {
			sum := p.queue + p.batch + p.exec + p.comm
			if err := abs(sum-p.latency) / p.latency; err > rep.PhaseSumErrMax {
				rep.PhaseSumErrMax = err
			}
		}
	}
	rep.Phases.Queue = phaseStats(queue)
	rep.Phases.Batch = phaseStats(batch)
	rep.Phases.Exec = phaseStats(exec)
	rep.Phases.Comm = phaseStats(comm)
	return rep
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// phaseStats sorts one phase's samples (in place) and takes percentiles.
func phaseStats(ms []float64) PhaseStats {
	sort.Float64s(ms)
	return PhaseStats{
		P50Ms: metrics.Percentile(ms, 50),
		P90Ms: metrics.Percentile(ms, 90),
		P99Ms: metrics.Percentile(ms, 99),
	}
}

// String renders the one-screen report the CLI and tests log.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "load: %d requests, %d clients, %.2fs wall\n",
		r.Total, r.Clients, r.Wall.Seconds())
	fmt.Fprintf(&b, "  served %d (%.1f rps, %d degraded)  shed %d (%.1f%%)  expired %d  draining %d  errors %d\n",
		r.OK, r.ThroughputRPS, r.Degraded, r.Shed, 100*r.ShedRate, r.Expired, r.Draining, r.Errors)
	fmt.Fprintf(&b, "  latency ms: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
		r.P50Ms, r.P90Ms, r.P99Ms, r.MaxMs)
	fmt.Fprintf(&b, "  phase ms (p50/p90/p99): queue %.2f/%.2f/%.2f  batch %.2f/%.2f/%.2f  exec %.2f/%.2f/%.2f  comm %.2f/%.2f/%.2f",
		r.Phases.Queue.P50Ms, r.Phases.Queue.P90Ms, r.Phases.Queue.P99Ms,
		r.Phases.Batch.P50Ms, r.Phases.Batch.P90Ms, r.Phases.Batch.P99Ms,
		r.Phases.Exec.P50Ms, r.Phases.Exec.P90Ms, r.Phases.Exec.P99Ms,
		r.Phases.Comm.P50Ms, r.Phases.Comm.P90Ms, r.Phases.Comm.P99Ms)
	return b.String()
}
