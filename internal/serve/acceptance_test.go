// Acceptance test for the tracing/SLO surface, in an external test package
// so it can drive the server through loadtest (which imports serve) the
// way an operator does: over real HTTP.
package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"swatop/internal/graph"
	"swatop/internal/metrics"
	"swatop/internal/obsrv"
	"swatop/internal/reqtrace"
	"swatop/internal/serve"
	"swatop/internal/serve/loadtest"
	"swatop/internal/workloads"
)

func acceptanceNet(batch int) (*graph.Graph, error) {
	return graph.Chain("tiny", batch,
		[]workloads.ConvLayer{
			{Net: "tiny", Name: "c1", Ni: 3, No: 16, R: 8, K: 3},
			{Net: "tiny", Name: "c2", Ni: 16, No: 16, R: 8, K: 3},
			{Net: "tiny", Name: "c3", Ni: 16, No: 16, R: 4, K: 3},
		},
		[]workloads.FCLayer{
			{Net: "tiny", Name: "f1", In: 16 * 2 * 2, Out: 32},
			{Net: "tiny", Name: "f2", In: 32, Out: 12},
		})
}

// TestTraceAcceptanceLoad is the PR's end-to-end acceptance run: 2000
// requests through the real HTTP stack with tracing and an (unmeetable)
// SLO attached, asserting
//
//	(a) per-request phase sums match end-to-end latency within 1%,
//	(b) /tracez serves a complete span tree for a sampled slow request,
//	(c) the forced SLO breach auto-captures a flight dump and CPU profile,
//
// and that the warmed machine seconds are bit-identical to a server with
// tracing disabled.
func TestTraceAcceptanceLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("2000-request load run")
	}
	dir := t.TempDir()
	flightPath := filepath.Join(dir, "flight.json")
	fw, err := os.Create(flightPath)
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	obs := obsrv.New()
	obs.SetFlightSink(fw)

	store := reqtrace.NewStore(reqtrace.StoreOptions{
		Capacity:   2100,
		SampleRate: 1,
		SlowMs:     1e-9, // everything counts as slow: every kept trace is tail-worthy
	})
	reg := metrics.NewRegistry()
	srv, err := serve.New(serve.Config{
		Net:         "tiny",
		Builder:     acceptanceNet,
		MaxBatch:    4,
		Buckets:     []int{1, 2, 4},
		BatchWindow: time.Millisecond,
		Metrics:     reg,
		Observer:    obs,
		Trace:       store,
		SLO: &serve.SLO{
			P99TargetMs:    1e-4, // unmeetable: the forced breach
			CheckInterval:  time.Hour,
			ProfileDir:     dir,
			ProfileSeconds: 50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	warmSecs, err := srv.Warmup(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := loadtest.Run(ts.URL, loadtest.Options{Clients: 16, Requests: 2000})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if rep.OK == 0 || rep.Errors > 0 {
		t.Fatalf("load run unhealthy: ok=%d errors=%d", rep.OK, rep.Errors)
	}

	// (a) Phase attribution is consistent: worst relative mismatch between
	// queue+batch+exec+comm and the server-observed latency stays under 1%.
	if rep.PhaseSumErrMax >= 0.01 {
		t.Errorf("phase sums diverge from latency by %.3f%% (max), want < 1%%", rep.PhaseSumErrMax*100)
	}
	if rep.Phases.Exec.P99Ms <= 0 {
		t.Error("exec phase p99 is zero — attribution did not flow through the load test")
	}

	// A caller-supplied traceparent joins the caller's trace: the response
	// carries the same trace id in header and body.
	callerTrace := "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/infer", strings.NewReader(`{"id":"traced"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", callerTrace)
	httpResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var traced serve.Response
	if err := json.NewDecoder(httpResp.Body).Decode(&traced); err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if traced.TraceID != "0123456789abcdef0123456789abcdef" {
		t.Errorf("trace id %q did not adopt the caller's traceparent", traced.TraceID)
	}
	if h := httpResp.Header.Get("traceparent"); !strings.HasPrefix(h, "00-0123456789abcdef0123456789abcdef-") {
		t.Errorf("response traceparent %q does not continue the caller's trace", h)
	}

	// (b) /tracez/<id> serves the complete span tree for that request.
	detail, err := http.Get(ts.URL + "/tracez/" + traced.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	var tr reqtrace.Trace
	if err := json.NewDecoder(detail.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	detail.Body.Close()
	if tr.Keep != "slow" {
		t.Errorf("trace keep reason %q, want slow", tr.Keep)
	}
	phases := map[string]bool{}
	for _, sp := range tr.Spans {
		phases[sp.Phase] = true
	}
	for _, want := range []string{
		reqtrace.PhaseAdmit, reqtrace.PhaseQueue, reqtrace.PhaseBatch,
		reqtrace.PhaseExec, reqtrace.PhaseComm, reqtrace.PhaseRespond,
	} {
		if !phases[want] {
			t.Errorf("trace missing %q span (has %v)", want, phases)
		}
	}
	// And the list endpoint retained the load run's traces.
	list, err := http.Get(ts.URL + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	var listDoc struct {
		Stats reqtrace.Stats `json:"stats"`
	}
	if err := json.NewDecoder(list.Body).Decode(&listDoc); err != nil {
		t.Fatal(err)
	}
	list.Body.Close()
	if listDoc.Stats.Retained < 1000 {
		t.Errorf("trace store retained %d traces, want most of the 2000-request run", listDoc.Stats.Retained)
	}

	// The latency histogram carries trace-id exemplars in its JSON snapshot.
	if ex := reg.Histogram("serve_latency_ms").Exemplars(); len(ex) == 0 {
		t.Error("serve_latency_ms has no exemplars after a traced load run")
	}

	// (c) Forced SLO breach: burn is far above threshold, and the breach
	// auto-captures a flight dump and a CPU profile.
	burn := srv.CheckSLO()
	if burn < 2 {
		t.Fatalf("burn rate %v under the unmeetable SLO, want >= threshold 2", burn)
	}
	if got := srv.SLOBreaches(); got != 1 {
		t.Fatalf("breach episodes = %d, want 1", got)
	}
	if obs.Dumps() == 0 {
		t.Error("SLO breach triggered no flight dump")
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.SLOProfiles() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if srv.SLOProfiles() != 1 {
		t.Fatal("SLO breach captured no CPU profile")
	}
	profile := filepath.Join(dir, "slo-cpu-1.pprof")
	if fi, err := os.Stat(profile); err != nil || fi.Size() == 0 {
		t.Errorf("breach CPU profile %s missing or empty: %v", profile, err)
	}
	if fi, err := os.Stat(flightPath); err != nil || fi.Size() == 0 {
		t.Errorf("flight dump %s missing or empty: %v", flightPath, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Tracing never changes simulated time: an untraced server warms to
	// bit-identical machine seconds.
	plain, err := serve.New(serve.Config{
		Net:         "tiny",
		Builder:     acceptanceNet,
		MaxBatch:    4,
		Buckets:     []int{1, 2, 4},
		BatchWindow: time.Millisecond,
		Metrics:     metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	plainSecs, err := plain.Warmup(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for b, want := range plainSecs {
		if got := warmSecs[b]; got != want {
			t.Errorf("bucket %d: machine seconds %v traced, %v untraced (must be bit-identical)", b, got, want)
		}
	}
	if err := plain.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
