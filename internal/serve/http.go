package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"

	"swatop/internal/obsrv"
	"swatop/internal/reqtrace"
)

// Handler returns the daemon's HTTP surface:
//
//	POST /infer    submit one inference request (JSON body, may be empty;
//	               a W3C traceparent header joins the caller's trace)
//	GET  /serverz  serving status: queue, breaker, batch/shed/degraded counts
//	GET  /tracez   tail-sampled request traces (when Config.Trace is set)
//	GET  /varz     time-series history queries (when Config.History is set)
//	GET  /dashz    time-series dashboard HTML (when Config.History is set)
//	...            every read-only introspection endpoint of internal/obsrv
//	               (/healthz, /metrics, /statusz, /events, /flightz, pprof)
//
// Status mapping: 200 served (degraded responses carry "degraded": true),
// 429 shed (queue full, Retry-After set), 503 draining (Retry-After set),
// 408 deadline exceeded. Overload therefore answers every request — with
// a result or an explicit backoff — and never a 5xx.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	obs := obsrv.NewServer("swserve", s.obs, s.reg)
	if s.cfg.Trace != nil {
		obs.Mount("/tracez", s.cfg.Trace.Handler(), "tail-sampled request traces")
	}
	if s.cfg.History != nil {
		obs.Mount("/varz", s.cfg.History.Handler(),
			"time-series history: windowed counter rates, histogram percentiles, fleet utilization (JSON)")
		obs.Mount("/dashz", s.cfg.History.DashHandler(),
			"time-series dashboard: utilization stack and per-series sparklines (HTML)")
	}
	mux.Handle("/", obs.Handler())
	mux.HandleFunc("/infer", s.handleInfer)
	mux.HandleFunc("/serverz", s.handleServerz)
	return mux
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req Request
	if body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20)); err != nil {
		writeJSONError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	} else if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSONError(w, http.StatusBadRequest, "bad request JSON: "+err.Error())
			return
		}
	}
	if req.DeadlineMs < 0 {
		writeJSONError(w, http.StatusBadRequest, "negative deadline_ms")
		return
	}
	req.TraceParent = r.Header.Get("traceparent")

	resp, err := s.Submit(r.Context(), req)
	switch {
	case err == nil:
		if resp.TraceID != "" {
			w.Header().Set("traceparent",
				reqtrace.FormatTraceparent(resp.TraceID, reqtrace.NewSpanID()))
		}
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, ErrShed):
		s.setRetryAfter(w)
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":          "overloaded: admission queue full",
			"retry_after_ms": s.cfg.RetryAfter.Seconds() * 1e3,
		})
	case errors.Is(err, ErrDraining):
		s.setRetryAfter(w)
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":          "draining: server is shutting down",
			"retry_after_ms": s.cfg.RetryAfter.Seconds() * 1e3,
		})
	case errors.Is(err, ErrDeadline):
		writeJSONError(w, http.StatusRequestTimeout, "deadline exceeded")
	case r.Context().Err() != nil:
		// The client is gone; nothing useful can be written.
	default:
		writeJSONError(w, http.StatusInternalServerError, err.Error())
	}
}

// setRetryAfter attaches the standard Retry-After header (whole seconds,
// rounded up — the millisecond-resolution hint lives in the JSON body).
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	secs := int(math.Ceil(s.cfg.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
}

// ServerStatus is the /serverz document.
type ServerStatus struct {
	Net           string  `json:"net"`
	Groups        int     `json:"groups,omitempty"`
	Pipeline      bool    `json:"pipeline,omitempty"`
	MaxBatch      int     `json:"max_batch"`
	BatchWindowMs float64 `json:"batch_window_ms"`
	Buckets       []int   `json:"buckets"`
	QueueCap      int     `json:"queue_capacity"`
	QueueDepth    int     `json:"queue_depth"`
	Draining      bool    `json:"draining"`
	Breaker       string  `json:"breaker"`
	BreakerTrips  uint64  `json:"breaker_trips"`
	Admitted      int64   `json:"admitted_total"`
	Responses     int64   `json:"responses_total"`
	Shed          int64   `json:"shed_total"`
	Expired       int64   `json:"deadline_expired_total"`
	Degraded      int64   `json:"degraded_total"`
	Batches       int64   `json:"batches_total"`
	BatchFailures int64   `json:"batch_failures_total"`
	// Tracing/SLO report the observability guardrails when configured.
	Tracing *reqtrace.Stats `json:"tracing,omitempty"`
	SLO     *SLOStatus      `json:"slo,omitempty"`
}

// SLOStatus is the /serverz view of the SLO guardrail.
type SLOStatus struct {
	P99TargetMs  float64 `json:"p99_target_ms,omitempty"`
	Availability float64 `json:"availability,omitempty"`
	BurnRate     float64 `json:"burn_rate"`
	Threshold    float64 `json:"burn_threshold"`
	Breaches     uint64  `json:"breaches_total"`
	Profiles     uint64  `json:"profiles_total"`
}

// Status freezes the current serving state.
func (s *Server) Status() ServerStatus {
	var tracing *reqtrace.Stats
	if s.cfg.Trace != nil {
		st := s.cfg.Trace.Stats()
		tracing = &st
	}
	var slo *SLOStatus
	if s.cfg.SLO != nil {
		slo = &SLOStatus{
			P99TargetMs:  s.cfg.SLO.P99TargetMs,
			Availability: s.cfg.SLO.Availability,
			BurnRate:     s.SLOBurnRate(),
			Threshold:    s.cfg.SLO.burnThreshold(),
			Breaches:     s.SLOBreaches(),
			Profiles:     s.SLOProfiles(),
		}
	}
	return ServerStatus{
		Net:           s.cfg.Net,
		Groups:        s.cfg.Groups,
		Pipeline:      s.cfg.Pipeline,
		MaxBatch:      s.cfg.MaxBatch,
		BatchWindowMs: s.cfg.BatchWindow.Seconds() * 1e3,
		Buckets:       s.Buckets(),
		QueueCap:      s.cfg.QueueDepth,
		QueueDepth:    len(s.queue),
		Draining:      s.Draining(),
		Breaker:       s.breaker.State(),
		BreakerTrips:  s.breaker.Trips(),
		Admitted:      s.reg.Counter("serve_admitted_total").Value(),
		Responses:     s.reg.Counter("serve_responses_total").Value(),
		Shed:          s.reg.Counter("serve_shed_total").Value(),
		Expired:       s.reg.Counter("serve_deadline_expired_total").Value(),
		Degraded:      s.reg.Counter("serve_degraded_total").Value(),
		Batches:       s.reg.Counter("serve_batches_total").Value(),
		BatchFailures: s.reg.Counter("serve_batch_failures_total").Value(),
		Tracing:       tracing,
		SLO:           slo,
	}
}

func (s *Server) handleServerz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
