package serve

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"swatop/internal/obsrv"
)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// SLO is the serving path's service-level objective and the guardrail that
// watches it: a background checker computes the error-budget burn rate
// from the metrics registry, and a breach auto-captures the evidence a
// postmortem needs — a flight-recorder dump and a CPU profile — at the
// moment the budget is burning, not hours later when someone reads a
// dashboard.
//
// Two budgets are watched, and the burn rate is the worse of them:
//
//   - Latency: at most 1% of responses may exceed P99TargetMs. The slow
//     fraction comes from the serve_latency_ms histogram (buckets with
//     bounds <= target count as fast), so burn 1.0 means exactly the
//     budgeted 1% is slow and burn 5.0 means 5% is.
//   - Availability: at least the Availability fraction of finished
//     requests must be answered (shed 429s and expired 408s are the
//     failures). Burn 1.0 means the error fraction equals the budget
//     1-Availability.
//
// Both are computed over the server's lifetime counters — a deliberate
// simplification over windowed burn rates: the daemon's acceptance tests
// and auto-dump hook need "is the budget burning", not multi-window
// alerting policy.
type SLO struct {
	// P99TargetMs is the latency objective: at most 1% of responses may be
	// slower than this. 0 disables the latency budget.
	P99TargetMs float64
	// Availability is the fraction of finished requests that must receive
	// an answer (e.g. 0.999). 0 disables the availability budget.
	Availability float64
	// BurnThreshold is the burn rate that counts as a breach (default 2 —
	// burning budget at twice the sustainable rate).
	BurnThreshold float64
	// CheckInterval is the background check cadence (default 5s).
	CheckInterval time.Duration
	// ProfileDir, when non-empty, is where breach-triggered CPU profiles
	// are written (slo-cpu-<n>.pprof). Empty skips profile capture.
	ProfileDir string
	// ProfileSeconds is how long a breach CPU profile records (default 1s).
	ProfileSeconds time.Duration
}

func (o *SLO) burnThreshold() float64 {
	if o.BurnThreshold > 0 {
		return o.BurnThreshold
	}
	return 2
}

func (o *SLO) checkInterval() time.Duration {
	if o.CheckInterval > 0 {
		return o.CheckInterval
	}
	return 5 * time.Second
}

func (o *SLO) profileSeconds() time.Duration {
	if o.ProfileSeconds > 0 {
		return o.ProfileSeconds
	}
	return time.Second
}

// sloState is the guardrail's mutable half, hanging off the Server.
type sloState struct {
	mu       sync.Mutex
	breached bool // inside a breach episode (hysteresis)

	burn      atomic.Uint64 // last burn rate, float bits
	breaches  atomic.Uint64
	profiling atomic.Bool
	profiles  atomic.Uint64
}

// sloChecker is the background loop; it stops when the batcher exits
// (Drain completed).
func (s *Server) sloChecker() {
	t := time.NewTicker(s.cfg.SLO.checkInterval())
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.CheckSLO()
		case <-s.batcherDone:
			return
		}
	}
}

// CheckSLO computes the current burn rate, publishes it, and fires the
// breach actions (flight dump + CPU profile) when it crosses the
// threshold. Exported so tests and operators can force a check instead of
// waiting out the interval. Returns the burn rate (0 when no SLO is
// configured or nothing has been served).
func (s *Server) CheckSLO() float64 {
	slo := s.cfg.SLO
	if slo == nil {
		return 0
	}
	snap := s.reg.Snapshot()

	burn := 0.0
	if slo.P99TargetMs > 0 {
		if h, ok := snap.Histograms["serve_latency_ms"]; ok && h.Count > 0 {
			fast := int64(0)
			for i, bound := range h.Bounds {
				if bound <= slo.P99TargetMs {
					fast += h.Counts[i]
				}
			}
			fracSlow := 1 - float64(fast)/float64(h.Count)
			if b := fracSlow / 0.01; b > burn {
				burn = b
			}
		}
	}
	if slo.Availability > 0 && slo.Availability < 1 {
		failed := snap.Counters["serve_shed_total"] + snap.Counters["serve_deadline_expired_total"]
		total := snap.Counters["serve_responses_total"] + failed
		if total > 0 {
			errFrac := float64(failed) / float64(total)
			if b := errFrac / (1 - slo.Availability); b > burn {
				burn = b
			}
		}
	}

	s.slo.burn.Store(floatBits(burn))
	s.reg.Gauge("serve_slo_burn_rate").Set(burn)

	threshold := slo.burnThreshold()
	s.slo.mu.Lock()
	fire := false
	if burn >= threshold && !s.slo.breached {
		s.slo.breached = true
		fire = true
	} else if s.slo.breached && burn < threshold/2 {
		// Hysteresis: the episode ends only once the burn rate halves, so
		// a rate hovering at the threshold dumps once, not every check.
		s.slo.breached = false
	}
	s.slo.mu.Unlock()

	if fire {
		s.slo.breaches.Add(1)
		s.reg.Counter("serve_slo_breaches_total").Inc()
		s.obs.Emit(obsrv.LevelError, "slo.breach",
			obsrv.F("burn_rate", burn), obsrv.F("threshold", threshold),
			obsrv.F("p99_target_ms", slo.P99TargetMs),
			obsrv.F("availability", slo.Availability))
		s.obs.AutoDump("slo-breach")
		s.captureProfile()
	}
	return burn
}

// SLOBurnRate reports the burn rate of the last check (0 before any).
func (s *Server) SLOBurnRate() float64 { return floatFromBits(s.slo.burn.Load()) }

// SLOBreaches reports how many breach episodes have fired.
func (s *Server) SLOBreaches() uint64 { return s.slo.breaches.Load() }

// SLOProfiles reports how many breach CPU profiles were captured.
func (s *Server) SLOProfiles() uint64 { return s.slo.profiles.Load() }

// captureProfile records one CPU profile into ProfileDir. At most one
// capture runs at a time; failures (another profiler active, unwritable
// dir) are logged, never fatal — the guardrail must not hurt serving.
func (s *Server) captureProfile() {
	slo := s.cfg.SLO
	if slo.ProfileDir == "" {
		return
	}
	if !s.slo.profiling.CompareAndSwap(false, true) {
		return
	}
	// Named by breach episode (captureProfile runs after the episode
	// counter increments), so successive breaches never overwrite.
	path := filepath.Join(slo.ProfileDir, fmt.Sprintf("slo-cpu-%d.pprof", s.slo.breaches.Load()))
	f, err := os.Create(path)
	if err != nil {
		s.slo.profiling.Store(false)
		s.obs.Emit(obsrv.LevelWarn, "slo.profile_fail", obsrv.F("error", err))
		return
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		s.slo.profiling.Store(false)
		s.obs.Emit(obsrv.LevelWarn, "slo.profile_fail", obsrv.F("error", err))
		return
	}
	go func() {
		time.Sleep(slo.profileSeconds())
		pprof.StopCPUProfile()
		f.Close()
		s.slo.profiles.Add(1)
		s.reg.Counter("serve_slo_profiles_total").Inc()
		s.obs.Emit(obsrv.LevelInfo, "slo.profile", obsrv.F("path", path))
		s.slo.profiling.Store(false)
	}()
}
