// Package serve is the always-on inference daemon behind cmd/swserve: it
// accepts single-inference HTTP/JSON requests, coalesces them into dynamic
// batches (a batch window and a max-batch knob, with bucket rounding so the
// tuned-schedule cache stays warm over a bounded set of shapes), executes
// the batches on the internal/infer engine — optionally scaled out across
// the core-group fleet — and is robust by construction:
//
//   - Admission control: a bounded queue; when it is full, requests are
//     shed immediately (HTTP 429 + Retry-After) instead of building an
//     unbounded backlog. Overload degrades throughput, never correctness.
//   - Deadlines: each request can carry one; it propagates through context
//     into the engine, expired requests are answered 408, and a batch whose
//     every member has a deadline runs under the latest of them.
//   - Circuit breaker: repeated tuning/measurement failures trip the
//     execution path into the baseline-fallback degraded mode (cached
//     schedules still serve; fresh tuning is skipped) until a probe batch
//     succeeds. Degraded responses are flagged and never enter the cache.
//   - Graceful drain: Drain stops admission, finishes every in-flight and
//     queued batch, and only then returns — the SIGTERM half of the
//     "millions of users" story.
//
// Everything the daemon does is measured: per-request latency, queue
// depth, batch sizes, shed/degraded/expired counts flow into the
// internal/metrics registry and the internal/obsrv event log that the
// embedded introspection endpoints serve.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"swatop/internal/cache"
	"swatop/internal/faults"
	"swatop/internal/graph"
	"swatop/internal/infer"
	"swatop/internal/metrics"
	"swatop/internal/obsrv"
	"swatop/internal/reqtrace"
	"swatop/internal/tshist"
)

// Admission errors. The HTTP layer maps these onto status codes; embedded
// users (tests, the load generator) branch with errors.Is.
var (
	// ErrShed: the admission queue is full — retry after backing off.
	ErrShed = errors.New("serve: admission queue full")
	// ErrDraining: the server is shutting down and no longer admits work.
	ErrDraining = errors.New("serve: draining, not accepting requests")
	// ErrDeadline: the request's deadline expired before a result was
	// produced (while queued, or mid-batch).
	ErrDeadline = errors.New("serve: deadline exceeded")
)

// Config describes one serving daemon.
type Config struct {
	// Net names the served network in responses and status documents.
	Net string
	// Builder rebuilds the network at a given batch size — the serving
	// analog of infer.Options.Builder (the CLI passes graph.ByName).
	Builder func(batch int) (*graph.Graph, error)

	// MaxBatch caps how many requests one batch coalesces (default 8).
	MaxBatch int
	// BatchWindow is how long the batcher waits for the batch to fill
	// after the first request arrives (default 2ms). 0 coalesces only
	// what is already queued.
	BatchWindow time.Duration
	// QueueDepth bounds the admission queue (default 4*MaxBatch).
	QueueDepth int
	// Buckets are the batch sizes actually executed: a coalesced batch of
	// k requests runs at the smallest bucket >= k (the tail is padding).
	// Bounding the executed shapes keeps the tuned-schedule cache warm
	// instead of tuning every distinct arrival count. Default: powers of
	// two up to MaxBatch.
	Buckets []int
	// DefaultDeadline applies to requests that do not carry their own
	// deadline (0 = no deadline).
	DefaultDeadline time.Duration
	// RetryAfter is the backoff hint attached to shed/draining responses
	// (default 50ms).
	RetryAfter time.Duration

	// Workers is the tuning concurrency of cache misses.
	Workers int
	// Groups/Pipeline scale batch execution across the simulated
	// core-group fleet, exactly as swinfer -groups/-pipeline do.
	Groups   int
	Pipeline bool

	// BreakerThreshold is how many consecutive bad batches (hard failures
	// or degraded resolutions) trip the breaker open (default 3);
	// BreakerCooldown is how many degraded batches are served before a
	// tuned probe (default 8).
	BreakerThreshold int
	BreakerCooldown  int

	// Library is the schedule cache (one is created when nil). Degraded
	// resolutions never enter it.
	Library *cache.Library
	// Faults, when non-nil, sabotages tuning measurements — the chaos
	// hook. Execution of resolved schedules stays clean.
	Faults *faults.Injector
	// Metrics/Observer receive the daemon's instrumentation.
	Metrics  *metrics.Registry
	Observer *obsrv.Observer
	// Trace, when non-nil, enables request-scoped tracing: every admitted
	// request gets a W3C trace ID (inherited from an incoming traceparent
	// header when present) and a span tree — admit, queue-wait, batch
	// formation, schedule resolution, per-group execution, comm share,
	// respond — tail-sampled into the store behind /tracez. Purely
	// observational: schedules and simulated machine seconds are
	// bit-identical with tracing on or off.
	Trace *reqtrace.Store
	// History, when non-nil, is the time-series store the daemon's HTTP
	// surface serves as /varz and /dashz (the cliobs -history scraper owns
	// populating it). Read-only here like Trace: schedules and machine
	// seconds are bit-identical with or without it.
	History *tshist.Store
	// SLO, when non-nil, runs the error-budget guardrail: a background
	// checker computes burn rate from the latency histogram and the
	// shed/expired counters, and a breach auto-dumps the flight recorder
	// plus a CPU profile. See SLO.
	SLO *SLO
}

// Request is one inference request: a single sample to be coalesced into
// a batch.
type Request struct {
	// ID is echoed into the response (optional).
	ID string `json:"id,omitempty"`
	// DeadlineMs bounds the request's total latency; 0 uses the server's
	// default deadline (which may be none).
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
	// TraceParent is the incoming W3C traceparent header value, set by the
	// HTTP layer (never from the JSON body). Empty or malformed values
	// start a fresh trace.
	TraceParent string `json:"-"`
}

// Response is the answer to one admitted request.
type Response struct {
	ID  string `json:"id,omitempty"`
	Net string `json:"net"`
	// Mode is the execution path of the batch ("single", "data-parallel",
	// "pipeline").
	Mode string `json:"mode"`
	// Batch is how many live requests the executed batch coalesced;
	// Bucket is the padded batch size actually executed.
	Batch  int `json:"batch"`
	Bucket int `json:"bucket"`
	// Degraded marks a response served by baseline-fallback schedules
	// (tuning failed or the breaker is open). Degraded results are
	// correct but slower, and are never cached.
	Degraded bool `json:"degraded,omitempty"`
	// TunedOps/CachedOps/DegradedOps count the batch's schedule
	// resolutions by kind.
	TunedOps    int `json:"tuned_ops"`
	CachedOps   int `json:"cached_ops"`
	DegradedOps int `json:"degraded_ops,omitempty"`
	// QueueMs/BatchMs/ExecMs/CommMs are the per-phase attribution of
	// LatencyMs: time queued before the batcher picked the request up,
	// batch-formation time (window fill until dispatch), execution, and
	// the batch's modeled inter-group communication share of the run.
	// They sum to LatencyMs exactly. RunMs is the whole engine run
	// (ExecMs + CommMs, measured independently).
	QueueMs   float64 `json:"queue_ms"`
	BatchMs   float64 `json:"batch_ms"`
	ExecMs    float64 `json:"exec_ms"`
	CommMs    float64 `json:"comm_ms"`
	RunMs     float64 `json:"run_ms"`
	LatencyMs float64 `json:"latency_ms"`
	// TraceID identifies the request's trace when tracing is enabled; slow
	// or unusual requests can be looked up at /tracez/<id>.
	TraceID string `json:"trace_id,omitempty"`
	// MachineMs is the batch's simulated machine time; PerInferenceMs is
	// that time amortized over the bucket — the hardware-side latency the
	// wall numbers above wrap.
	MachineMs      float64 `json:"machine_ms"`
	PerInferenceMs float64 `json:"per_inference_ms"`
}

// pending is one admitted request waiting for its batch.
type pending struct {
	id       string
	enq      time.Time
	deq      time.Time // when the batcher picked it up (stamped by batcher)
	deadline time.Time // zero: none
	canceled atomic.Bool
	done     chan outcome
	rec      *reqtrace.Recorder // nil when tracing is off
}

type outcome struct {
	resp *Response
	err  error
}

// Server is the serving daemon. Construct with New, optionally Warmup,
// then either drive it through Handler (HTTP) or Submit (embedded); Drain
// shuts it down gracefully.
type Server struct {
	cfg     Config
	eng     *infer.Engine
	lib     *cache.Library
	reg     *metrics.Registry
	obs     *obsrv.Observer
	breaker *breaker
	buckets []int

	queue       chan *pending
	mu          sync.RWMutex // guards draining against queue sends
	draining    bool
	batcherDone chan struct{}

	warmMu   sync.Mutex
	warmSecs map[int]float64

	slo sloState
}

// New validates the config, fits the engine's cost model and starts the
// batcher. The server admits requests immediately; call Warmup first if
// the first requests must not pay the tuning cost.
func New(cfg Config) (*Server, error) {
	if cfg.Builder == nil {
		return nil, fmt.Errorf("serve: Config.Builder is required")
	}
	if cfg.Net == "" {
		cfg.Net = "net"
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 8
	}
	if cfg.BatchWindow < 0 {
		return nil, fmt.Errorf("serve: negative batch window %v", cfg.BatchWindow)
	}
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = 2 * time.Millisecond
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 4 * cfg.MaxBatch
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 50 * time.Millisecond
	}
	buckets, err := normalizeBuckets(cfg.Buckets, cfg.MaxBatch)
	if err != nil {
		return nil, err
	}
	eng, err := infer.NewEngine()
	if err != nil {
		return nil, err
	}
	lib := cfg.Library
	if lib == nil {
		lib = cache.NewLibrary()
	}
	s := &Server{
		cfg:         cfg,
		eng:         eng,
		lib:         lib,
		reg:         cfg.Metrics,
		obs:         cfg.Observer,
		breaker:     newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		buckets:     buckets,
		queue:       make(chan *pending, cfg.QueueDepth),
		batcherDone: make(chan struct{}),
		warmSecs:    map[int]float64{},
	}
	s.reg.Gauge("serve_queue_capacity").Set(float64(cfg.QueueDepth))
	s.reg.Gauge("serve_breaker_state").Set(stateGauge(BreakerClosed))
	s.obs.Emit(obsrv.LevelInfo, "serve.start",
		obsrv.F("net", cfg.Net), obsrv.F("max_batch", cfg.MaxBatch),
		obsrv.F("queue_depth", cfg.QueueDepth), obsrv.F("buckets", fmt.Sprint(buckets)),
		obsrv.F("groups", cfg.Groups))
	go s.batcher()
	if cfg.SLO != nil {
		go s.sloChecker()
	}
	return s, nil
}

// normalizeBuckets sorts, dedupes and validates the bucket ladder, capping
// it at maxBatch and guaranteeing maxBatch itself is a bucket (every legal
// coalesced size must round up to something).
func normalizeBuckets(in []int, maxBatch int) ([]int, error) {
	var out []int
	if len(in) == 0 {
		for b := 1; b < maxBatch; b *= 2 {
			out = append(out, b)
		}
		out = append(out, maxBatch)
		return out, nil
	}
	seen := map[int]bool{}
	for _, b := range in {
		if b < 1 {
			return nil, fmt.Errorf("serve: bucket %d, want >= 1", b)
		}
		if b > maxBatch || seen[b] {
			continue
		}
		seen[b] = true
		out = append(out, b)
	}
	if !seen[maxBatch] {
		out = append(out, maxBatch)
	}
	sort.Ints(out)
	return out, nil
}

// bucketFor is the smallest bucket >= k.
func (s *Server) bucketFor(k int) int {
	for _, b := range s.buckets {
		if b >= k {
			return b
		}
	}
	return s.buckets[len(s.buckets)-1]
}

// Buckets returns the executed batch-size ladder.
func (s *Server) Buckets() []int { return append([]int(nil), s.buckets...) }

// Library exposes the schedule cache (tests assert degraded schedules
// never enter it).
func (s *Server) Library() *cache.Library { return s.lib }

// Warmup resolves and executes one batch per bucket size so serving-path
// requests hit a warm schedule cache. It returns the per-bucket simulated
// machine seconds — the deterministic capacity numbers the bench rows
// gate. Warmup uses the same degradation-tolerant options as serving, so
// it succeeds (degraded) even under fault injection.
func (s *Server) Warmup(ctx context.Context) (map[int]float64, error) {
	out := map[int]float64{}
	for _, b := range s.buckets {
		g, err := s.cfg.Builder(b)
		if err != nil {
			return nil, fmt.Errorf("serve: warmup bucket %d: %w", b, err)
		}
		res, err := s.eng.Run(ctx, g, s.runOptions(true))
		if err != nil {
			return nil, fmt.Errorf("serve: warmup bucket %d: %w", b, err)
		}
		out[b] = res.Seconds
		s.obs.Emit(obsrv.LevelInfo, "serve.warm",
			obsrv.F("bucket", b), obsrv.Ms("machine_ms", res.Seconds),
			obsrv.F("degraded_ops", res.DegradedOps))
	}
	s.warmMu.Lock()
	for b, secs := range out {
		s.warmSecs[b] = secs
	}
	s.warmMu.Unlock()
	return out, nil
}

// runOptions builds the engine options of one batch execution. tuned=false
// is the breaker's open state: resolve from cache or degrade, never tune.
func (s *Server) runOptions(tuned bool) infer.Options {
	return infer.Options{
		Workers:              s.cfg.Workers,
		Library:              s.lib,
		Fallback:             true,
		NoTune:               !tuned,
		Faults:               s.cfg.Faults,
		MaxCandidateFailures: 3,
		SkipBaseline:         true,
		Metrics:              s.reg,
		Observer:             s.obs,
		Groups:               s.cfg.Groups,
		Pipeline:             s.cfg.Pipeline,
		Builder:              s.cfg.Builder,
	}
}

// Submit admits one request and blocks until its batch produces a result,
// the request's context is canceled, or admission is refused (ErrShed /
// ErrDraining — immediately, with no queue time burned).
func (s *Server) Submit(ctx context.Context, req Request) (*Response, error) {
	p := &pending{
		id:   req.ID,
		enq:  time.Now(),
		done: make(chan outcome, 1),
	}
	if s.cfg.Trace != nil {
		p.rec = reqtrace.Start(req.TraceParent)
	}
	if req.DeadlineMs > 0 {
		p.deadline = p.enq.Add(time.Duration(req.DeadlineMs * float64(time.Millisecond)))
	} else if s.cfg.DefaultDeadline > 0 {
		p.deadline = p.enq.Add(s.cfg.DefaultDeadline)
	}

	s.mu.RLock()
	if s.draining {
		s.mu.RUnlock()
		s.reg.Counter("serve_drain_rejected_total").Inc()
		s.finishTrace(p, 503, false)
		return nil, ErrDraining
	}
	select {
	case s.queue <- p:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.reg.Counter("serve_shed_total").Inc()
		s.obs.Emit(obsrv.LevelDebug, "serve.shed", obsrv.F("id", req.ID))
		s.finishTrace(p, 429, false)
		return nil, ErrShed
	}
	s.reg.Counter("serve_admitted_total").Inc()
	depth := float64(len(s.queue))
	s.reg.Gauge("serve_queue_depth").Set(depth)
	s.reg.Gauge("serve_queue_depth_max").Max(depth)
	p.rec.Span(reqtrace.PhaseAdmit, "admit", p.enq, time.Since(p.enq),
		map[string]string{"queue_depth": fmt.Sprint(int(depth))})

	select {
	case o := <-p.done:
		return o.resp, o.err
	case <-ctx.Done():
		// The client went away; the batcher skips canceled requests it
		// has not yet executed.
		p.canceled.Store(true)
		s.reg.Counter("serve_canceled_total").Inc()
		s.finishTrace(p, 499, false)
		return nil, ctx.Err()
	}
}

// finishTrace seals a request's trace with its terminal status and hands
// it to the tail-sampling store. No-op without tracing; Finish is
// idempotent, so racing terminal paths (cancel vs. deliver) store once.
func (s *Server) finishTrace(p *pending, status int, degraded bool) {
	if p.rec == nil {
		return
	}
	tr := p.rec.Finish(status, degraded, time.Now())
	if tr.ID != "" {
		s.cfg.Trace.Add(tr)
	}
}

// Drain stops admission, serves everything already admitted, and returns
// once the batcher has gone idle (or ctx expires). Safe to call more than
// once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	if !already {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	if !already {
		s.obs.Emit(obsrv.LevelInfo, "serve.drain",
			obsrv.F("queued", len(s.queue)))
	}
	select {
	case <-s.batcherDone:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
}

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// batcher is the single consumer of the admission queue: it coalesces
// requests into batches (window + max-batch) and executes them serially.
// After Drain closes the queue it keeps consuming until the buffer is
// empty — that is the graceful half of shutdown.
func (s *Server) batcher() {
	defer close(s.batcherDone)
	for {
		p, ok := <-s.queue
		if !ok {
			return
		}
		p.deq = time.Now()
		batch := []*pending{p}
		if s.cfg.MaxBatch > 1 {
			timer := time.NewTimer(s.cfg.BatchWindow)
		collect:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case q, ok := <-s.queue:
					if !ok {
						break collect
					}
					q.deq = time.Now()
					batch = append(batch, q)
				case <-timer.C:
					break collect
				}
			}
			timer.Stop()
		}
		s.reg.Gauge("serve_queue_depth").Set(float64(len(s.queue)))
		s.runBatch(batch)
	}
}

// runBatch executes one coalesced batch: drop dead members, pick the
// bucket, consult the breaker, run the engine (retrying once in degraded
// mode when a tuned run hard-fails), and deliver each member's outcome.
func (s *Server) runBatch(batch []*pending) {
	now := time.Now()
	live := make([]*pending, 0, len(batch))
	for _, p := range batch {
		switch {
		case p.canceled.Load():
			// Counted at cancellation time in Submit.
		case !p.deadline.IsZero() && now.After(p.deadline):
			s.expire(p)
		default:
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return
	}
	bucket := s.bucketFor(len(live))

	// The batch runs under the latest member deadline — cancelling at the
	// earliest would waste every other member's work. Members whose own
	// deadline passes during the run are expired afterwards.
	ctx := context.Background()
	var cancel context.CancelFunc = func() {}
	if latest, ok := latestDeadline(live); ok {
		ctx, cancel = context.WithDeadline(ctx, latest)
	}
	defer cancel()

	// One batch-level span collector, imported into every member's trace:
	// resolve and per-group exec spans are shared by the whole batch.
	var spans *reqtrace.Spans
	if s.cfg.Trace != nil {
		spans = &reqtrace.Spans{}
	}

	tuned := s.breaker.allowTuning()
	start := time.Now()
	res, err := s.execute(ctx, bucket, tuned, spans)
	if err != nil && tuned && !isDeadline(err) {
		// A hard failure on the tuned path charges the breaker and is
		// retried once in degraded mode — requests see a flagged answer,
		// not an error, whenever the baseline can still serve.
		s.recordBreaker(true)
		tuned = false
		res, err = s.execute(ctx, bucket, false, spans)
	}
	runMs := time.Since(start).Seconds() * 1e3

	if err != nil {
		if isDeadline(err) {
			// ctx deadline = latest member deadline, so every member's own
			// deadline has passed.
			for _, p := range live {
				s.expire(p)
			}
			return
		}
		s.recordBreaker(true)
		s.reg.Counter("serve_batch_failures_total").Inc()
		s.obs.Emit(obsrv.LevelError, "batch.fail",
			obsrv.F("bucket", bucket), obsrv.F("error", err))
		for _, p := range live {
			s.deliver(p, outcome{err: err})
			s.finishTrace(p, 500, false)
		}
		return
	}

	degraded := res.DegradedOps > 0
	s.recordBreaker(degraded)
	s.reg.Counter("serve_batches_total").Inc()
	if degraded {
		s.reg.Counter("serve_batches_degraded_total").Inc()
	}
	s.reg.Histogram("serve_batch_size", 1, 2, 4, 8, 16, 32, 64).Observe(float64(len(live)))
	s.reg.Counter("serve_batch_pad_total").Add(int64(bucket - len(live)))
	s.reg.Gauge("serve_machine_seconds").Add(res.Seconds)
	s.reg.Histogram("serve_run_ms", 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000).Observe(runMs)
	s.obs.Emit(obsrv.LevelDebug, "batch.run",
		obsrv.F("requests", len(live)), obsrv.F("bucket", bucket),
		obsrv.F("mode", res.Mode), obsrv.F("degraded", degraded),
		obsrv.Ms("machine_ms", res.Seconds))

	done := time.Now()
	// Per-phase attribution splits each member's wall latency exactly:
	// queue (enqueue -> batcher pickup) + batch (pickup -> dispatch) +
	// exec + comm (the run, split by the batch's modeled comm fraction)
	// = latency. The comm fraction comes from simulated seconds, but only
	// apportions measured wall time — it never feeds back into execution.
	runDur := done.Sub(start)
	commShare := 0.0
	if res.Seconds > 0 && res.CommSeconds > 0 {
		commShare = res.CommSeconds / res.Seconds
	}
	commDur := time.Duration(float64(runDur) * commShare)
	for _, p := range live {
		if !p.deadline.IsZero() && done.After(p.deadline) {
			s.expire(p)
			continue
		}
		queueDur := p.deq.Sub(p.enq)
		batchDur := start.Sub(p.deq)
		resp := &Response{
			ID:             p.id,
			Net:            s.cfg.Net,
			Mode:           res.Mode,
			Batch:          len(live),
			Bucket:         bucket,
			Degraded:       degraded,
			TunedOps:       res.TunedOps,
			CachedOps:      res.CachedOps,
			DegradedOps:    res.DegradedOps,
			QueueMs:        queueDur.Seconds() * 1e3,
			BatchMs:        batchDur.Seconds() * 1e3,
			ExecMs:         (runDur - commDur).Seconds() * 1e3,
			CommMs:         commDur.Seconds() * 1e3,
			RunMs:          runMs,
			LatencyMs:      done.Sub(p.enq).Seconds() * 1e3,
			MachineMs:      res.Seconds * 1e3,
			PerInferenceMs: res.Seconds * 1e3 / float64(bucket),
			TraceID:        p.rec.ID(),
		}
		s.reg.Counter("serve_responses_total").Inc()
		if degraded {
			s.reg.Counter("serve_degraded_total").Inc()
		}
		hist := s.reg.Histogram("serve_latency_ms",
			0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)
		if p.rec != nil {
			hist.ObserveExemplar(resp.LatencyMs, p.rec.ID())
			p.rec.Span(reqtrace.PhaseQueue, "queue wait", p.enq, queueDur, nil)
			p.rec.Span(reqtrace.PhaseBatch, "batch form", p.deq, batchDur,
				map[string]string{
					"batch": fmt.Sprint(len(live)), "bucket": fmt.Sprint(bucket),
					"mode": res.Mode, "tuned": fmt.Sprint(tuned),
				})
			p.rec.Import(spans)
			p.rec.Span(reqtrace.PhaseComm, "inter-group comm share", done.Add(-commDur), commDur,
				map[string]string{"machine_comm_ms": reqtrace.MsArg(res.CommSeconds * 1e3)})
		} else {
			hist.Observe(resp.LatencyMs)
		}
		s.deliver(p, outcome{resp: resp})
		if p.rec != nil {
			p.rec.Span(reqtrace.PhaseRespond, "respond", done, time.Since(done), nil)
			s.finishTrace(p, 200, degraded)
		}
	}
}

// execute runs one bucket-sized batch through the engine. spans, when
// non-nil, collects the run's resolve and per-group exec spans.
func (s *Server) execute(ctx context.Context, bucket int, tuned bool, spans *reqtrace.Spans) (*infer.Result, error) {
	g, err := s.cfg.Builder(bucket)
	if err != nil {
		return nil, fmt.Errorf("serve: building bucket-%d graph: %w", bucket, err)
	}
	opts := s.runOptions(tuned)
	opts.Spans = spans
	return s.eng.Run(ctx, g, opts)
}

// recordBreaker feeds one batch outcome into the breaker and publishes
// state transitions.
func (s *Server) recordBreaker(bad bool) {
	from, to := s.breaker.record(bad)
	s.reg.Gauge("serve_breaker_state").Set(stateGauge(s.breaker.State()))
	if from == "" {
		return
	}
	level := obsrv.LevelWarn
	kind := "breaker.trip"
	if to == BreakerClosed {
		level = obsrv.LevelInfo
		kind = "breaker.close"
	}
	s.reg.Gauge("serve_breaker_trips").Set(float64(s.breaker.Trips()))
	s.obs.Emit(level, kind, obsrv.F("from", from), obsrv.F("to", to))
}

func (s *Server) expire(p *pending) {
	s.reg.Counter("serve_deadline_expired_total").Inc()
	s.obs.Emit(obsrv.LevelDebug, "serve.expired", obsrv.F("id", p.id))
	if p.rec != nil && !p.deq.IsZero() {
		p.rec.Span(reqtrace.PhaseQueue, "queue wait", p.enq, p.deq.Sub(p.enq), nil)
	}
	s.deliver(p, outcome{err: ErrDeadline})
	s.finishTrace(p, 408, false)
}

// deliver hands the outcome to the waiting Submit (buffered; never blocks,
// and a canceled waiter simply never reads it).
func (s *Server) deliver(p *pending, o outcome) {
	select {
	case p.done <- o:
	default:
	}
}

// latestDeadline returns the latest member deadline, and whether every
// member has one (a single open-ended request keeps the batch open-ended).
func latestDeadline(live []*pending) (time.Time, bool) {
	var latest time.Time
	for _, p := range live {
		if p.deadline.IsZero() {
			return time.Time{}, false
		}
		if p.deadline.After(latest) {
			latest = p.deadline
		}
	}
	return latest, true
}

func isDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded)
}
