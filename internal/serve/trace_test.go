package serve

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"swatop/internal/metrics"
	"swatop/internal/reqtrace"
)

// TestTraceMachineSecondsInvariant: attaching a trace store must not change
// a single simulated machine second — spans are observations around the
// deterministic work, never inputs to it. Warmed bucket seconds and every
// per-request machine time must be bit-identical with tracing on and off.
// This is the `make trace-check` gate.
func TestTraceMachineSecondsInvariant(t *testing.T) {
	run := func(store *reqtrace.Store) (map[int]float64, []float64) {
		t.Helper()
		s := newServer(t, Config{
			MaxBatch: 2,
			Buckets:  []int{1, 2},
			Groups:   2, // fleet path: exercises per-group exec + comm spans
			Metrics:  metrics.NewRegistry(),
			Trace:    store,
		})
		secs, err := s.Warmup(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var machine []float64
		for i := 0; i < 6; i++ {
			resp, err := s.Submit(context.Background(), Request{ID: fmt.Sprintf("r%d", i)})
			if err != nil {
				t.Fatal(err)
			}
			machine = append(machine, resp.MachineMs)
		}
		return secs, machine
	}

	offSecs, offMachine := run(nil)
	store := reqtrace.NewStore(reqtrace.StoreOptions{SampleRate: 1})
	onSecs, onMachine := run(store)

	for b, want := range offSecs {
		if got := onSecs[b]; got != want {
			t.Errorf("bucket %d: warm machine seconds %v traced, %v untraced (must be bit-identical)", b, got, want)
		}
	}
	for i := range offMachine {
		if onMachine[i] != offMachine[i] {
			t.Errorf("request %d: machine ms %v traced, %v untraced (must be bit-identical)", i, onMachine[i], offMachine[i])
		}
	}

	// And the traced run actually captured complete span trees.
	if store.Len() == 0 {
		t.Fatal("trace store retained nothing at sample rate 1")
	}
	tr := store.Traces()[0]
	phases := map[string]bool{}
	for _, sp := range tr.Spans {
		phases[sp.Phase] = true
	}
	for _, want := range []string{
		reqtrace.PhaseAdmit, reqtrace.PhaseQueue, reqtrace.PhaseBatch,
		reqtrace.PhaseExec, reqtrace.PhaseComm, reqtrace.PhaseRespond,
	} {
		if !phases[want] {
			t.Errorf("trace %s missing %q span (has %v)", tr.ID, want, phases)
		}
	}
}

// TestTracePhaseSumsMatchLatency: the four server-side phases are exact by
// construction — queue + batch + exec + comm must equal the end-to-end
// latency for every response.
func TestTracePhaseSumsMatchLatency(t *testing.T) {
	s := newServer(t, Config{
		MaxBatch: 2,
		Buckets:  []int{1, 2},
		Metrics:  metrics.NewRegistry(),
		Trace:    reqtrace.NewStore(reqtrace.StoreOptions{SampleRate: 1}),
	})
	if _, err := s.Warmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		resp, err := s.Submit(context.Background(), Request{ID: fmt.Sprintf("p%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		sum := resp.QueueMs + resp.BatchMs + resp.ExecMs + resp.CommMs
		if diff := sum - resp.LatencyMs; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("request %d: phase sum %v != latency %v (diff %v)", i, sum, resp.LatencyMs, diff)
		}
		if resp.TraceID == "" {
			t.Errorf("request %d: no trace id on traced server", i)
		}
	}
}

// TestServeMetricsHelpText: every serve_*, search_* and cache_* metric a
// real serving run publishes must carry curated HELP text, not the generic
// "swATOP <kind>." fallback — the audit the exposition relies on.
func TestServeMetricsHelpText(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newServer(t, Config{
		MaxBatch: 2,
		Buckets:  []int{1, 2},
		Metrics:  reg,
		SLO:      &SLO{P99TargetMs: 1000, Availability: 0.99, CheckInterval: time.Hour},
	})
	if _, err := s.Warmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), Request{ID: "audit"}); err != nil {
		t.Fatal(err)
	}
	s.CheckSLO()

	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	audited := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "# HELP ") {
			continue
		}
		rest := strings.TrimPrefix(line, "# HELP ")
		name, help, ok := strings.Cut(rest, " ")
		if !ok {
			t.Errorf("malformed HELP line %q", line)
			continue
		}
		base := name
		if i := strings.Index(base, "group"); i == 0 {
			if j := strings.Index(base, "_"); j > 0 {
				base = base[j+1:]
			}
		}
		for _, prefix := range []string{"serve_", "search_", "cache_"} {
			if strings.HasPrefix(base, prefix) {
				audited++
				if strings.HasPrefix(help, "swATOP ") {
					t.Errorf("metric %s has only the generic fallback help %q", name, help)
				}
			}
		}
	}
	if audited < 10 {
		t.Fatalf("audited only %d serve_/search_/cache_ metrics — the run did not exercise the surface", audited)
	}
}
