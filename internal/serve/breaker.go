package serve

import "sync"

// Breaker states. The serving daemon's execution path is guarded by a
// classic three-state circuit breaker, except that "open" does not reject
// work — it degrades it: batches run in cache-or-baseline mode
// (infer.Options.NoTune + Fallback) instead of attempting fresh tuning.
// Rejecting would turn a sick tuner into an outage; degrading keeps every
// admitted request answered, just flagged.
const (
	// BreakerClosed: normal operation, tuning allowed.
	BreakerClosed = "closed"
	// BreakerOpen: repeated failures tripped the breaker; batches execute
	// in degraded (baseline-fallback, no-tune) mode.
	BreakerOpen = "open"
	// BreakerHalfOpen: the cooldown elapsed and the next batch is a tuned
	// probe — success closes the breaker, failure re-opens it.
	BreakerHalfOpen = "half-open"
)

// breaker tracks consecutive batch failures and decides the execution mode
// of the next batch. All methods are safe for concurrent use (the batcher
// is single-goroutine today, but /serverz reads the state live).
type breaker struct {
	mu sync.Mutex
	// threshold is how many consecutive bad batches trip the breaker;
	// cooldown is how many degraded batches run before a tuned probe.
	threshold int
	cooldown  int

	state     string
	badStreak int // consecutive bad batches while closed
	sinceOpen int // degraded batches served since the breaker opened
	trips     uint64
}

func newBreaker(threshold, cooldown int) *breaker {
	if threshold < 1 {
		threshold = 3
	}
	if cooldown < 1 {
		cooldown = 8
	}
	return &breaker{threshold: threshold, cooldown: cooldown, state: BreakerClosed}
}

// allowTuning reports whether the next batch may tune (true) or must run
// degraded (false). While open it counts the degraded batches served and
// promotes to half-open — letting one tuned probe through — once the
// cooldown has elapsed.
func (b *breaker) allowTuning() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed, BreakerHalfOpen:
		return true
	default: // open
		b.sinceOpen++
		if b.sinceOpen > b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	}
}

// record feeds one batch outcome back. bad means the batch either hard-
// failed or produced degraded (fallback) resolutions — both indicate the
// tuning/measurement path is unhealthy. Returns the state transition as
// (from, to) when one happened ("" otherwise) so the caller can emit one
// event per transition, not per batch.
func (b *breaker) record(bad bool) (from, to string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if !bad {
			b.badStreak = 0
			return "", ""
		}
		b.badStreak++
		if b.badStreak >= b.threshold {
			b.state = BreakerOpen
			b.sinceOpen = 0
			b.trips++
			return BreakerClosed, BreakerOpen
		}
	case BreakerHalfOpen:
		if bad {
			b.state = BreakerOpen
			b.sinceOpen = 0
			b.badStreak = 0
			b.trips++
			return BreakerHalfOpen, BreakerOpen
		}
		b.state = BreakerClosed
		b.badStreak = 0
		return BreakerHalfOpen, BreakerClosed
	case BreakerOpen:
		// Outcomes of degraded batches don't move the state; only the
		// half-open probe does.
	}
	return "", ""
}

// State returns the current state name.
func (b *breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// stateGauge maps the state to the serve_breaker_state metric value.
func stateGauge(state string) float64 {
	switch state {
	case BreakerOpen:
		return 1
	case BreakerHalfOpen:
		return 2
	default:
		return 0
	}
}
