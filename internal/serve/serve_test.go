package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"swatop/internal/cache"
	"swatop/internal/faults"
	"swatop/internal/graph"
	"swatop/internal/metrics"
	"swatop/internal/obsrv"
	"swatop/internal/workloads"
)

// tinyBuilder mirrors the infer test network: small enough to tune in
// milliseconds, structurally complete (explicit conv head, implicit convs,
// pooled FC tail).
func tinyBuilder(batch int) (*graph.Graph, error) {
	return graph.Chain("tiny", batch,
		[]workloads.ConvLayer{
			{Net: "tiny", Name: "c1", Ni: 3, No: 16, R: 8, K: 3},
			{Net: "tiny", Name: "c2", Ni: 16, No: 16, R: 8, K: 3},
			{Net: "tiny", Name: "c3", Ni: 16, No: 16, R: 4, K: 3},
		},
		[]workloads.FCLayer{
			{Net: "tiny", Name: "f1", In: 16 * 2 * 2, Out: 32},
			{Net: "tiny", Name: "f2", In: 32, Out: 12},
		})
}

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Builder == nil {
		cfg.Builder = tinyBuilder
	}
	if cfg.Net == "" {
		cfg.Net = "tiny"
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s
}

func TestNormalizeBuckets(t *testing.T) {
	cases := []struct {
		in       []int
		maxBatch int
		want     string
		wantErr  bool
	}{
		{nil, 8, "[1 2 4 8]", false},
		{nil, 1, "[1]", false},
		{nil, 6, "[1 2 4 6]", false},
		{[]int{8, 2, 2, 16}, 8, "[2 8]", false},
		{[]int{3}, 8, "[3 8]", false},
		{[]int{0}, 8, "", true},
	}
	for _, c := range cases {
		got, err := normalizeBuckets(c.in, c.maxBatch)
		if c.wantErr {
			if err == nil {
				t.Errorf("normalizeBuckets(%v, %d): want error", c.in, c.maxBatch)
			}
			continue
		}
		if err != nil {
			t.Errorf("normalizeBuckets(%v, %d): %v", c.in, c.maxBatch, err)
			continue
		}
		if fmt.Sprint(got) != c.want {
			t.Errorf("normalizeBuckets(%v, %d) = %v, want %s", c.in, c.maxBatch, got, c.want)
		}
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(2, 1)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("initial state %q", got)
	}
	// One bad batch is not enough.
	b.record(true)
	b.record(false) // a good batch resets the streak
	b.record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after interrupted streak %q, want closed", got)
	}
	// Two consecutive bad batches trip it.
	if from, to := b.record(true); from != BreakerClosed || to != BreakerOpen {
		t.Fatalf("trip transition (%q, %q)", from, to)
	}
	if b.allowTuning() {
		t.Fatal("open breaker allowed tuning before cooldown")
	}
	// Cooldown elapsed: next batch is a half-open probe.
	if !b.allowTuning() {
		t.Fatal("breaker did not go half-open after cooldown")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state %q, want half-open", got)
	}
	// Failed probe re-opens.
	if from, to := b.record(true); from != BreakerHalfOpen || to != BreakerOpen {
		t.Fatalf("probe-failure transition (%q, %q)", from, to)
	}
	if got := b.Trips(); got != 2 {
		t.Fatalf("trips %d, want 2", got)
	}
	// Cooldown again, successful probe closes.
	b.allowTuning()
	if !b.allowTuning() {
		t.Fatal("breaker did not re-probe")
	}
	if from, to := b.record(false); from != BreakerHalfOpen || to != BreakerClosed {
		t.Fatalf("probe-success transition (%q, %q)", from, to)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state %q, want closed", got)
	}
}

// TestServeWarmupAndSubmit: a warmed server answers from the schedule cache
// (no degraded ops), echoes IDs, and reports consistent latency splits.
func TestServeWarmupAndSubmit(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newServer(t, Config{
		MaxBatch:    4,
		BatchWindow: time.Millisecond,
		Buckets:     []int{1, 4},
		Metrics:     reg,
	})
	warm, err := s.Warmup(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{1, 4} {
		if warm[b] <= 0 {
			t.Fatalf("warmup bucket %d machine seconds %v", b, warm[b])
		}
	}
	resp, err := s.Submit(context.Background(), Request{ID: "r-0"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != "r-0" || resp.Net != "tiny" {
		t.Fatalf("response identity %q/%q", resp.ID, resp.Net)
	}
	if resp.Degraded || resp.DegradedOps != 0 {
		t.Fatalf("warmed response degraded: %+v", resp)
	}
	if resp.TunedOps != 0 || resp.CachedOps == 0 {
		t.Fatalf("warmed response should be all-cached: tuned=%d cached=%d",
			resp.TunedOps, resp.CachedOps)
	}
	if resp.Bucket < resp.Batch || resp.MachineMs <= 0 || resp.PerInferenceMs <= 0 {
		t.Fatalf("response accounting: %+v", resp)
	}
	if resp.LatencyMs < resp.RunMs {
		t.Fatalf("latency %.3fms < run %.3fms", resp.LatencyMs, resp.RunMs)
	}
	if got := reg.Counter("serve_responses_total").Value(); got != 1 {
		t.Fatalf("serve_responses_total = %d", got)
	}
	if got := reg.Counter("serve_degraded_total").Value(); got != 0 {
		t.Fatalf("serve_degraded_total = %d", got)
	}
}

// TestServeCoalescing: concurrent requests inside one batch window must
// coalesce instead of running one-by-one.
func TestServeCoalescing(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newServer(t, Config{
		MaxBatch:    8,
		BatchWindow: 200 * time.Millisecond, // generous: scheduling noise proof
		QueueDepth:  16,
		Metrics:     reg,
	})
	if _, err := s.Warmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wg sync.WaitGroup
	resps := make([]*Response, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.Submit(context.Background(), Request{ID: fmt.Sprintf("r-%d", i)})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			resps[i] = r
		}(i)
	}
	wg.Wait()
	maxBatch := 0
	for _, r := range resps {
		if r != nil && r.Batch > maxBatch {
			maxBatch = r.Batch
		}
	}
	if maxBatch < 2 {
		t.Fatalf("no coalescing: max observed batch %d, want >= 2", maxBatch)
	}
	if got := reg.Counter("serve_responses_total").Value(); got != n {
		t.Fatalf("serve_responses_total = %d, want %d", got, n)
	}
}

// TestServeShedding: with a one-deep queue and a wide burst, some requests
// must be shed immediately — and every request still gets a definite answer.
func TestServeShedding(t *testing.T) {
	reg := metrics.NewRegistry()
	// A builder that sleeps makes every batch take >= 20ms of wall clock, so
	// a simultaneous burst reliably overruns the one-deep queue.
	slowBuilder := func(b int) (*graph.Graph, error) {
		time.Sleep(20 * time.Millisecond)
		return tinyBuilder(b)
	}
	s := newServer(t, Config{
		Builder:     slowBuilder,
		MaxBatch:    1,
		BatchWindow: time.Millisecond,
		QueueDepth:  1,
		Metrics:     reg,
	})
	if _, err := s.Warmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	var ok, shed int64
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Submit(context.Background(), Request{})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, ErrShed):
				shed++
			default:
				t.Errorf("unexpected submit error: %v", err)
			}
		}()
	}
	wg.Wait()
	if ok == 0 || shed == 0 {
		t.Fatalf("burst of %d: ok=%d shed=%d, want both > 0", n, ok, shed)
	}
	if got := reg.Counter("serve_shed_total").Value(); got != shed {
		t.Fatalf("serve_shed_total = %d, want %d", got, shed)
	}
	if got := reg.Counter("serve_admitted_total").Value(); got != ok {
		t.Fatalf("serve_admitted_total = %d, want %d", got, ok)
	}
}

// TestServeDeadlineExpired: a request whose deadline has already passed by
// the time its batch forms is answered ErrDeadline, not executed.
func TestServeDeadlineExpired(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newServer(t, Config{
		MaxBatch:    1,
		BatchWindow: time.Millisecond,
		Metrics:     reg,
	})
	if _, err := s.Warmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(context.Background(), Request{ID: "late", DeadlineMs: 0.0001})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired request: err = %v, want ErrDeadline", err)
	}
	if got := reg.Counter("serve_deadline_expired_total").Value(); got == 0 {
		t.Fatal("serve_deadline_expired_total not incremented")
	}
	// A sane deadline still serves.
	resp, err := s.Submit(context.Background(), Request{ID: "fine", DeadlineMs: 60_000})
	if err != nil {
		t.Fatalf("in-deadline request: %v", err)
	}
	if resp.ID != "fine" {
		t.Fatalf("response id %q", resp.ID)
	}
}

// TestServeBreakerTripsAndRecovers drives the whole degradation state
// machine against real fault injection: sabotaged measurements make every
// tuned batch degrade, the breaker trips, degraded responses are flagged
// and never cached, a failed probe re-opens, and once the faults clear a
// successful probe closes the breaker and tuning resumes.
func TestServeBreakerTripsAndRecovers(t *testing.T) {
	inj := faults.New(1)
	inj.FailEveryNth(faults.Measure, 1, errors.New("injected measurement failure"))
	lib := cache.NewLibrary()
	reg := metrics.NewRegistry()
	s := newServer(t, Config{
		MaxBatch:         1, // one request = one batch: deterministic breaker feed
		BatchWindow:      time.Millisecond,
		Buckets:          []int{1},
		BreakerThreshold: 2,
		BreakerCooldown:  1,
		Library:          lib,
		Faults:           inj,
		Metrics:          reg,
	})

	submit := func(id string) *Response {
		t.Helper()
		r, err := s.Submit(context.Background(), Request{ID: id})
		if err != nil {
			t.Fatalf("submit %s: %v", id, err)
		}
		return r
	}

	// Two degraded batches trip the breaker (threshold 2).
	for i := 0; i < 2; i++ {
		r := submit(fmt.Sprintf("bad-%d", i))
		if !r.Degraded || r.DegradedOps == 0 {
			t.Fatalf("faulted batch %d not degraded: %+v", i, r)
		}
	}
	if got := s.breaker.State(); got != BreakerOpen {
		t.Fatalf("breaker %q after %d degraded batches, want open", got, 2)
	}
	// Open state: served degraded without tuning; cooldown 1 means the next
	// batch is degraded and the one after is a (still-faulted) probe that
	// re-opens the breaker.
	if r := submit("open-0"); !r.Degraded {
		t.Fatalf("open-state response not degraded: %+v", r)
	}
	if r := submit("probe-fail"); !r.Degraded {
		t.Fatalf("failed-probe response not degraded: %+v", r)
	}
	if got := s.breaker.State(); got != BreakerOpen {
		t.Fatalf("breaker %q after failed probe, want open", got)
	}
	if got := s.breaker.Trips(); got != 2 {
		t.Fatalf("trips = %d, want 2", got)
	}
	// Degraded schedules must never have entered the cache.
	if got := lib.Len(); got != 0 {
		t.Fatalf("library has %d entries after degraded-only serving, want 0", got)
	}

	// Faults clear: one more degraded batch burns the cooldown, then the
	// probe tunes successfully and closes the breaker.
	inj.Disarm(faults.Measure)
	if r := submit("open-1"); !r.Degraded {
		t.Fatalf("cooldown response not degraded: %+v", r)
	}
	probe := submit("probe-ok")
	if probe.Degraded || probe.TunedOps == 0 {
		t.Fatalf("recovered probe: %+v, want tuned and not degraded", probe)
	}
	if got := s.breaker.State(); got != BreakerClosed {
		t.Fatalf("breaker %q after successful probe, want closed", got)
	}
	if got := lib.Len(); got == 0 {
		t.Fatal("library empty after successful tuned batch")
	}
	// And the next request rides the now-warm cache.
	if r := submit("cached"); r.Degraded || r.CachedOps == 0 {
		t.Fatalf("post-recovery response: %+v, want cached", r)
	}
	if got := reg.Counter("serve_degraded_total").Value(); got != 5 {
		t.Fatalf("serve_degraded_total = %d, want 5", got)
	}
	if trips := reg.Gauge("serve_breaker_trips").Value(); trips != 2 {
		t.Fatalf("serve_breaker_trips gauge = %v, want 2", trips)
	}
}

// TestServeDrain: everything admitted before Drain is served; nothing is
// admitted after.
func TestServeDrain(t *testing.T) {
	reg := metrics.NewRegistry()
	s, err := New(Config{
		Net:         "tiny",
		Builder:     tinyBuilder,
		MaxBatch:    4,
		BatchWindow: 250 * time.Millisecond, // requests sit in the window during Drain
		QueueDepth:  16,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Warmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	const n = 6
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Submit(context.Background(), Request{ID: fmt.Sprintf("d-%d", i)})
		}(i)
	}
	// Wait until all six are admitted (queued or already in a batch window).
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("serve_admitted_total").Value() < n {
		if time.Now().After(deadline) {
			t.Fatal("requests were not admitted in time")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("admitted request %d failed during drain: %v", i, err)
		}
	}
	if got := reg.Counter("serve_responses_total").Value(); got != n {
		t.Fatalf("serve_responses_total = %d, want %d (drain must finish in-flight work)", got, n)
	}
	if !s.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	if _, err := s.Submit(context.Background(), Request{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit err = %v, want ErrDraining", err)
	}
	// Drain is idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestServeSlowSubscriberDeterminism: a wedged SSE-style subscriber must
// not change the simulated machine seconds of the serving path — events are
// dropped, never waited for.
func TestServeSlowSubscriberDeterminism(t *testing.T) {
	warm := func(obs *obsrv.Observer) map[int]float64 {
		t.Helper()
		s := newServer(t, Config{
			MaxBatch: 4,
			Buckets:  []int{1, 4},
			Observer: obs,
		})
		m, err := s.Warmup(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	quiet := warm(nil)

	obs := obsrv.New()
	obs.SetLevel(obsrv.LevelDebug)
	_, cancel := obs.Subscribe(1) // never read: wedged consumer
	defer cancel()
	noisy := warm(obs)

	for b, want := range quiet {
		if got := noisy[b]; got != want {
			t.Errorf("bucket %d: machine seconds %v with wedged subscriber, want %v", b, got, want)
		}
	}
	if obs.Dropped() == 0 {
		t.Error("wedged subscriber dropped no events — fanout is not exercising the bound")
	}
}
