// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) against the simulated SW26010. Each experiment returns
// structured rows; cmd/swbench and the top-level benchmarks render them.
package experiments

import (
	"fmt"

	"swatop/internal/autotune"
	"swatop/internal/conv"
	"swatop/internal/costmodel"
	"swatop/internal/exec"
	"swatop/internal/gemm"
	"swatop/internal/ir"
	"swatop/internal/sw26010"
	"swatop/internal/tensor"
)

// Runner holds the shared state of an experiment session: the fitted
// Eq. (2) model (the offline calibration swATOP performs once per machine)
// and the quick/full switch.
type Runner struct {
	Model *costmodel.GemmModel
	// Quick trims the heaviest sweeps (brute-force searches, 225-point
	// grids) to stratified subsets so the whole suite runs in minutes.
	// Full mode reproduces the complete grids.
	Quick bool

	sweepCache []SweepRow
	gemmCache  []GemmRow
}

// NewRunner fits the GEMM cost model and returns a quick-mode runner.
func NewRunner() (*Runner, error) {
	m, err := costmodel.FitGemmModel()
	if err != nil {
		return nil, err
	}
	return &Runner{Model: m, Quick: true}, nil
}

// RunProgram measures a program on the simulator (timed-only, fast loops).
func RunProgram(prog *ir.Program) (float64, error) {
	binds, err := exec.BindVirtual(prog)
	if err != nil {
		return 0, err
	}
	res, err := exec.Run(prog, binds, exec.Options{FastLoops: true})
	if err != nil {
		return 0, err
	}
	return res.Seconds, nil
}

// TuneConv runs swATOP's model-based tuner on one convolution method and
// returns the tuned program's simulated time.
func (r *Runner) TuneConv(method string, s conv.Shape) (autotune.Result, error) {
	op, err := r.ConvOp(method, s)
	if err != nil {
		return autotune.Result{}, err
	}
	res, err := autotune.ModelBased(op, r.Model)
	if err != nil {
		return autotune.Result{}, err
	}
	secs, err := RunProgram(res.Best.Program)
	if err != nil {
		return autotune.Result{}, err
	}
	res.Best.Measured = secs
	return res, nil
}

// ConvOp builds the tunable operator for a method name.
func (r *Runner) ConvOp(method string, s conv.Shape) (autotune.Operator, error) {
	switch method {
	case "implicit":
		return conv.NewImplicitOp(s)
	case "explicit":
		return conv.NewExplicitOp(s)
	case "winograd":
		return conv.NewWinogradOp(s)
	}
	return nil, fmt.Errorf("unknown conv method %q", method)
}

// TuneGemm runs the model-based tuner on a GEMM shape.
func (r *Runner) TuneGemm(p gemm.Params) (autotune.Result, error) {
	op, err := gemm.NewOp(p)
	if err != nil {
		return autotune.Result{}, err
	}
	res, err := autotune.ModelBased(op, r.Model)
	if err != nil {
		return autotune.Result{}, err
	}
	secs, err := RunProgram(res.Best.Program)
	if err != nil {
		return autotune.Result{}, err
	}
	res.Best.Measured = secs
	return res, nil
}

// Efficiency converts a simulated time into the paper's reporting units:
// core-group efficiency against peak, and chip-level TFLOPS (4 core groups
// running batch-parallel, the swCaffe deployment; all efficiencies use the
// *direct convolution* FLOP count, so Winograd may exceed 100%).
func Efficiency(flops int64, seconds float64) (eff float64, chipTFlops float64) {
	gflops := float64(flops) / seconds / 1e9
	eff = gflops / sw26010.PeakGFlops
	chipTFlops = gflops * sw26010.NumCG / 1e3
	return eff, chipTFlops
}

// ConvFLOPs is the direct-convolution FLOP count used for all efficiency
// reporting.
func ConvFLOPs(s tensor.ConvShape) int64 { return s.FLOPs() }
