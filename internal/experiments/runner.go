// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) against the simulated SW26010. Each experiment returns
// structured rows; cmd/swbench and the top-level benchmarks render them.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"swatop/internal/autotune"
	"swatop/internal/conv"
	"swatop/internal/costmodel"
	"swatop/internal/exec"
	"swatop/internal/gemm"
	"swatop/internal/ir"
	"swatop/internal/metrics"
	"swatop/internal/obsrv"
	"swatop/internal/search"
	"swatop/internal/sw26010"
	"swatop/internal/tensor"
)

// Runner holds the shared state of an experiment session: the fitted
// Eq. (2) model (the offline calibration swATOP performs once per machine)
// and the quick/full switch. A Runner is safe to share between goroutines.
type Runner struct {
	Model *costmodel.GemmModel
	// Quick trims the heaviest sweeps (brute-force searches, 225-point
	// grids) to stratified subsets so the whole suite runs in minutes.
	// Full mode reproduces the complete grids.
	Quick bool
	// Workers is the host-parallelism budget: sweeps tune independent
	// layers concurrently, and single-operator tuning runs the autotuner's
	// candidate worker pool with this many goroutines. Values below 2 run
	// sequentially. Every reported number — selected schedules, simulated
	// times, the machine-time ledger — is identical for any Workers value
	// (the tuner's deterministic-merge guarantee); only host wall time
	// changes.
	Workers int
	// Progress, when non-nil, receives sweep-level progress (completed
	// tuning jobs out of the sweep's total). It is never called
	// concurrently.
	Progress func(done, total int)
	// Retry is the backoff policy for transient measurement errors during
	// tuning; the zero value retries nothing. Long unattended sweeps set
	// it so a flaky measurement costs one candidate, not the whole run.
	// Retries never change any reported number (the tuner's ledger counts
	// only completed measurements).
	Retry autotune.Retry
	// Metrics, when non-nil, receives every tuning run's autotune_* and
	// exec_* metrics (candidate counts, wall seconds, simulated machine
	// seconds). Purely observational: attaching a registry changes no
	// reported number.
	Metrics *metrics.Registry
	// Observer, when non-nil, receives every tuning run's structured event
	// log and registers each search in the observer's JobTracker. Like
	// Metrics, purely observational.
	Observer *obsrv.Observer
	// Searcher, when non-nil, switches every tuning run from the
	// exhaustive walk to sample-efficient search with the given budget
	// fraction (0 = the 0.10 default) and RNG seed (0 = per-operator
	// stable seed) — the knobs behind swbench's -searcher/-budget flags.
	Searcher     search.Searcher
	SearchBudget float64
	SearchSeed   uint64

	mu         sync.Mutex // guards the lazily built sweep caches
	progressMu sync.Mutex // serializes Progress callbacks
	sweepCache []SweepRow
	gemmCache  []GemmRow
}

// NewRunner fits the GEMM cost model and returns a quick-mode runner.
func NewRunner() (*Runner, error) {
	m, err := costmodel.FitGemmModel()
	if err != nil {
		return nil, err
	}
	return &Runner{Model: m, Quick: true}, nil
}

// RunProgram measures a program on the simulator (timed-only, fast loops).
func RunProgram(prog *ir.Program) (float64, error) {
	binds, err := exec.BindVirtual(prog)
	if err != nil {
		return 0, err
	}
	res, err := exec.Run(prog, binds, exec.Options{FastLoops: true})
	if err != nil {
		return 0, err
	}
	return res.Seconds, nil
}

// TuneConv runs swATOP's model-based tuner on one convolution method and
// returns the tuned program's simulated time. The candidate pool uses
// r.Workers goroutines.
func (r *Runner) TuneConv(method string, s conv.Shape) (autotune.Result, error) {
	return r.tuneConv(context.Background(), method, s, r.Workers)
}

// tuneConv is TuneConv with an explicit worker budget, so layer-parallel
// sweeps can keep each inner tuning sequential instead of oversubscribing
// the host.
func (r *Runner) tuneConv(ctx context.Context, method string, s conv.Shape, workers int) (autotune.Result, error) {
	op, err := r.ConvOp(method, s)
	if err != nil {
		return autotune.Result{}, err
	}
	res, err := autotune.ModelBasedCtx(ctx, op, r.Model, r.tuneOptions(workers))
	if err != nil {
		return autotune.Result{}, err
	}
	secs, err := RunProgram(res.Best.Program)
	if err != nil {
		return autotune.Result{}, err
	}
	res.Best.Measured = secs
	return res, nil
}

// tuneOptions assembles the shared tuner options of every sweep.
func (r *Runner) tuneOptions(workers int) autotune.Options {
	return autotune.Options{
		Workers: workers, Retry: r.Retry, Metrics: r.Metrics, Observer: r.Observer,
		Searcher: r.Searcher, SearchBudget: r.SearchBudget, SearchSeed: r.SearchSeed,
	}
}

// ConvOp builds the tunable operator for a method name.
func (r *Runner) ConvOp(method string, s conv.Shape) (autotune.Operator, error) {
	switch method {
	case "implicit":
		return conv.NewImplicitOp(s)
	case "explicit":
		return conv.NewExplicitOp(s)
	case "winograd":
		return conv.NewWinogradOp(s)
	}
	return nil, fmt.Errorf("unknown conv method %q", method)
}

// TuneGemm runs the model-based tuner on a GEMM shape. The candidate pool
// uses r.Workers goroutines.
func (r *Runner) TuneGemm(p gemm.Params) (autotune.Result, error) {
	return r.tuneGemm(context.Background(), p, r.Workers)
}

func (r *Runner) tuneGemm(ctx context.Context, p gemm.Params, workers int) (autotune.Result, error) {
	op, err := gemm.NewOp(p)
	if err != nil {
		return autotune.Result{}, err
	}
	res, err := autotune.ModelBasedCtx(ctx, op, r.Model, r.tuneOptions(workers))
	if err != nil {
		return autotune.Result{}, err
	}
	secs, err := RunProgram(res.Best.Program)
	if err != nil {
		return autotune.Result{}, err
	}
	res.Best.Measured = secs
	return res, nil
}

// forEach runs fn(0..n-1) on up to r.Workers goroutines. Callers index a
// pre-built job list and write results by index, so output order never
// depends on scheduling. The lowest-index error wins, matching what a
// sequential loop would have reported first.
func (r *Runner) forEach(n int, fn func(i int) error) error {
	workers := r.Workers
	if workers > n {
		workers = n
	}
	if workers < 2 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
			r.reportProgress(i+1, n)
		}
		return nil
	}
	var (
		next    atomic.Int64
		mu      sync.Mutex
		done    int
		errIdx  = -1
		firstEr error
		wg      sync.WaitGroup
	)
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstEr != nil
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed() {
					return
				}
				err := fn(i)
				mu.Lock()
				if err != nil && (firstEr == nil || i < errIdx) {
					firstEr, errIdx = err, i
				}
				done++
				d := done
				mu.Unlock()
				if err == nil {
					r.reportProgress(d, n)
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}

func (r *Runner) reportProgress(done, total int) {
	if r.Progress == nil {
		return
	}
	r.progressMu.Lock()
	defer r.progressMu.Unlock()
	r.Progress(done, total)
}

// collect is forEach over a per-index result slice, dropping the indices fn
// declined to fill (rows filtered out by applicability rules).
func collectRows[T any](r *Runner, n int, fn func(i int) (T, bool, error)) ([]T, error) {
	rows := make([]T, n)
	keep := make([]bool, n)
	err := r.forEach(n, func(i int) error {
		row, ok, err := fn(i)
		if err != nil {
			return err
		}
		rows[i], keep[i] = row, ok
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := rows[:0]
	for i, row := range rows {
		if keep[i] {
			out = append(out, row)
		}
	}
	return out, nil
}

// Efficiency converts a simulated time into the paper's reporting units:
// core-group efficiency against peak, and chip-level TFLOPS (4 core groups
// running batch-parallel, the swCaffe deployment; all efficiencies use the
// *direct convolution* FLOP count, so Winograd may exceed 100%).
func Efficiency(flops int64, seconds float64) (eff float64, chipTFlops float64) {
	gflops := float64(flops) / seconds / 1e9
	eff = gflops / sw26010.PeakGFlops
	chipTFlops = gflops * sw26010.NumCG / 1e3
	return eff, chipTFlops
}

// ConvFLOPs is the direct-convolution FLOP count used for all efficiency
// reporting.
func ConvFLOPs(s tensor.ConvShape) int64 { return s.FLOPs() }
