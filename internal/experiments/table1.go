package experiments

import (
	"context"
	"fmt"
	"math"

	"swatop/internal/conv"
	"swatop/internal/workloads"
)

// SweepRow is one (configuration, method, batch) cell of the Listing-1
// versatility sweep feeding Table 1 and Fig. 8.
type SweepRow struct {
	Method string
	Batch  int
	Shape  conv.Shape
	SwATOP float64
	Manual float64
	NA     bool // no manual implementation for this case
	Eff    float64
	TFlops float64
}

// Table1Cell aggregates one (method, batch) cell of Table 1.
type Table1Cell struct {
	Method       string
	Batch        int
	Faster       int
	Slower       int
	AvgFasterPct float64 // average speedup of the faster cases, percent
	AvgSlowerPct float64 // average slowdown of the slower cases, percent
	FasterInf    bool    // no manual version at all: the paper's "+∞%"
}

// Fig8Row aggregates throughput/efficiency per (method, batch) over the
// sweep.
type Fig8Row struct {
	Method                 string
	Batch                  int
	AvgTFlops              float64
	AvgEff, MinEff, MaxEff float64
}

// sweep caches the Listing-1 grid results per (method, batch). The grid's
// (shape, method) cells are tuned in parallel across r.Workers goroutines;
// rows keep the deterministic grid order regardless of worker count.
func (r *Runner) sweep() ([]SweepRow, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sweepCache != nil {
		return r.sweepCache, nil
	}
	type job struct {
		batch  int
		shape  conv.Shape
		method string
	}
	var jobs []job
	for _, batch := range workloads.Batches() {
		shapes := workloads.Listing1(batch)
		for i, s := range shapes {
			if r.Quick && i%7 != 0 {
				continue // quick: a stratified 11 of 75 (stride coprime to the grid)
			}
			for _, method := range []string{"implicit", "explicit", "winograd"} {
				if !methodApplies(method, s) {
					continue
				}
				jobs = append(jobs, job{batch: batch, shape: s, method: method})
			}
		}
	}
	rows, err := collectRows(r, len(jobs), func(i int) (SweepRow, bool, error) {
		j := jobs[i]
		tuned, err := r.tuneConv(context.Background(), j.method, j.shape, 1)
		if err != nil {
			return SweepRow{}, false, fmt.Errorf("sweep %s %v: %w", j.method, j.shape, err)
		}
		row := SweepRow{Method: j.method, Batch: j.batch, Shape: j.shape, SwATOP: tuned.Best.Measured}
		row.Eff, row.TFlops = Efficiency(j.shape.FLOPs(), row.SwATOP)
		manual, na, err := manualFor(j.method, j.shape)
		if err != nil {
			return SweepRow{}, false, err
		}
		if na {
			row.NA = true
		} else {
			t, err := RunProgram(manual)
			if err != nil {
				return SweepRow{}, false, err
			}
			row.Manual = t
		}
		return row, true, nil
	})
	if err != nil {
		return nil, err
	}
	r.sweepCache = rows
	return rows, nil
}

// Table1 reproduces Table 1: faster/slower counts and average speedups of
// swATOP vs the best manual implementation over the Listing-1 sweep.
func (r *Runner) Table1() ([]Table1Cell, error) {
	rows, err := r.sweep()
	if err != nil {
		return nil, err
	}
	cells := map[string]*Table1Cell{}
	key := func(m string, b int) string { return fmt.Sprintf("%s/%d", m, b) }
	for _, row := range rows {
		k := key(row.Method, row.Batch)
		c := cells[k]
		if c == nil {
			c = &Table1Cell{Method: row.Method, Batch: row.Batch}
			cells[k] = c
		}
		if row.NA {
			// swATOP provides the only implementation: counts as faster
			// with unbounded speedup (the paper's "+∞%").
			c.Faster++
			c.FasterInf = true
			continue
		}
		if row.SwATOP <= row.Manual {
			c.Faster++
			c.AvgFasterPct += row.Manual/row.SwATOP - 1
		} else {
			c.Slower++
			c.AvgSlowerPct += 1 - row.Manual/row.SwATOP
		}
	}
	var out []Table1Cell
	for _, batch := range workloads.Batches() {
		for _, m := range []string{"implicit", "explicit", "winograd"} {
			c := cells[key(m, batch)]
			if c == nil {
				continue
			}
			finite := c.Faster
			if c.FasterInf {
				finite = 0 // all faster cases are "+∞"
				c.AvgFasterPct = math.Inf(1)
			} else if c.Faster > 0 {
				c.AvgFasterPct = c.AvgFasterPct / float64(c.Faster) * 100
			}
			_ = finite
			if c.Slower > 0 {
				c.AvgSlowerPct = c.AvgSlowerPct / float64(c.Slower) * 100
			}
			out = append(out, *c)
		}
	}
	return out, nil
}

// Fig8 reproduces Fig. 8: throughput and efficiency of the three methods
// over the sweep.
func (r *Runner) Fig8() ([]Fig8Row, error) {
	rows, err := r.sweep()
	if err != nil {
		return nil, err
	}
	agg := map[string]*Fig8Row{}
	counts := map[string]int{}
	key := func(m string, b int) string { return fmt.Sprintf("%s/%d", m, b) }
	for _, row := range rows {
		k := key(row.Method, row.Batch)
		a := agg[k]
		if a == nil {
			a = &Fig8Row{Method: row.Method, Batch: row.Batch, MinEff: math.Inf(1)}
			agg[k] = a
		}
		a.AvgTFlops += row.TFlops
		a.AvgEff += row.Eff
		if row.Eff < a.MinEff {
			a.MinEff = row.Eff
		}
		if row.Eff > a.MaxEff {
			a.MaxEff = row.Eff
		}
		counts[k]++
	}
	var out []Fig8Row
	for _, batch := range workloads.Batches() {
		for _, m := range []string{"implicit", "explicit", "winograd"} {
			k := key(m, batch)
			if a := agg[k]; a != nil {
				n := float64(counts[k])
				a.AvgTFlops /= n
				a.AvgEff /= n
				out = append(out, *a)
			}
		}
	}
	return out, nil
}
