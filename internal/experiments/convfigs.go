package experiments

import (
	"context"
	"fmt"

	"swatop/internal/baseline"
	"swatop/internal/conv"
	"swatop/internal/ir"
	"swatop/internal/workloads"
)

// LayerRow is one bar of Figs. 5–7: a network layer at a batch size,
// swATOP's tuned time vs the best manual implementation.
type LayerRow struct {
	Net, Layer string
	Batch      int
	Shape      conv.Shape
	SwATOP     float64 // seconds, simulated
	Manual     float64 // 0 when no manual implementation exists
	ManualNA   bool
	Speedup    float64 // Manual/SwATOP; 0 when ManualNA
	Eff        float64 // direct-conv efficiency of the swATOP version
	ChipTFlops float64
	SpaceSize  int
	// Measured and SpacePoints describe budgeted (Searcher) runs: how many
	// candidates were actually measured out of how many raw schedule-space
	// points. Both zero on exhaustive runs, where SpaceSize (the valid
	// candidate count) tells the whole story.
	Measured    int
	SpacePoints int
}

// manualFor builds the best manual implementation for a method, or reports
// that none exists.
func manualFor(method string, s conv.Shape) (*ir.Program, bool, error) {
	switch method {
	case "implicit":
		prog, err := baseline.SwDNNImplicit(s)
		if err != nil {
			return nil, true, nil // no manual version (e.g. batch 1)
		}
		return prog, false, nil
	case "winograd":
		prog, err := baseline.ManualWinograd(s)
		if err != nil {
			return nil, false, err
		}
		return prog, false, nil
	case "explicit":
		prog, err := baseline.ManualExplicit(s)
		if err != nil {
			return nil, false, err
		}
		return prog, false, nil
	}
	return nil, false, fmt.Errorf("unknown method %q", method)
}

// methodApplies mirrors the paper's applicability rules.
func methodApplies(method string, s conv.Shape) bool {
	switch method {
	case "implicit":
		return s.Ni >= conv.MinNiImplicit
	case "winograd":
		return conv.WinogradApplies(s)
	default:
		return true
	}
}

// convFig runs one of Figs. 5–7: tune every applicable layer of the three
// CNNs with the given method and compare with the manual implementation.
// Layers are tuned in parallel across r.Workers goroutines; row order is
// the deterministic network/layer/batch order regardless of worker count.
func (r *Runner) convFig(method string, batches []int) ([]LayerRow, error) {
	type job struct {
		layer workloads.ConvLayer
		batch int
		shape conv.Shape
	}
	var jobs []job
	for _, net := range []string{"vgg16", "resnet", "yolo"} {
		layers := workloads.Networks()[net]
		for li, l := range layers {
			if r.Quick && li%2 == 1 {
				continue // quick mode: every other layer
			}
			for _, b := range batches {
				s := l.Shape(b)
				if !methodApplies(method, s) {
					continue
				}
				jobs = append(jobs, job{layer: l, batch: b, shape: s})
			}
		}
	}
	return collectRows(r, len(jobs), func(i int) (LayerRow, bool, error) {
		j := jobs[i]
		l, b, s := j.layer, j.batch, j.shape
		tuned, err := r.tuneConv(context.Background(), method, s, 1)
		if err != nil {
			return LayerRow{}, false, fmt.Errorf("%s %s b=%d: %w", method, l, b, err)
		}
		row := LayerRow{
			Net: l.Net, Layer: l.Name, Batch: b, Shape: s,
			SwATOP:    tuned.Best.Measured,
			SpaceSize: tuned.Valid,
		}
		if tuned.Measured > 0 {
			row.Measured, row.SpacePoints = tuned.Measured, tuned.SpaceSize
		}
		row.Eff, row.ChipTFlops = Efficiency(s.FLOPs(), row.SwATOP)
		manual, na, err := manualFor(method, s)
		if err != nil {
			return LayerRow{}, false, fmt.Errorf("%s %s b=%d manual: %w", method, l, b, err)
		}
		if na {
			row.ManualNA = true
		} else {
			t, err := RunProgram(manual)
			if err != nil {
				return LayerRow{}, false, fmt.Errorf("%s %s b=%d manual run: %w", method, l, b, err)
			}
			row.Manual = t
			row.Speedup = t / row.SwATOP
		}
		return row, true, nil
	})
}

// Fig5 reproduces Fig. 5: implicit CONV speedups over swDNN on the three
// CNNs (batch 1 has no manual implementation).
func (r *Runner) Fig5(batches []int) ([]LayerRow, error) { return r.convFig("implicit", batches) }

// Fig6 reproduces Fig. 6: Winograd CONV speedups on applicable layers.
func (r *Runner) Fig6(batches []int) ([]LayerRow, error) { return r.convFig("winograd", batches) }

// Fig7 reproduces Fig. 7: explicit CONV speedups on all layers.
func (r *Runner) Fig7(batches []int) ([]LayerRow, error) { return r.convFig("explicit", batches) }

// AvgSpeedup summarizes the comparable rows (manual exists) of a figure.
func AvgSpeedup(rows []LayerRow, batch int) (avg float64, n int) {
	sum := 0.0
	for _, row := range rows {
		if row.Batch == batch && !row.ManualNA {
			sum += row.Speedup
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}
