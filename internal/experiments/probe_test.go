package experiments

import (
	"testing"

	"swatop/internal/baseline"
	"swatop/internal/conv"
	"swatop/internal/gemm"
)

// TestProbeHeadlineShapes is the calibration probe: on representative
// shapes, the qualitative results of the paper must hold. Run with -v to
// see the raw numbers.
func TestProbeHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	r, err := NewRunner()
	if err != nil {
		t.Fatal(err)
	}

	// --- Implicit conv vs swDNN, a mid VGG layer at batch 32.
	s := conv.Shape{B: 32, Ni: 256, No: 256, Ro: 28, Co: 28, Kr: 3, Kc: 3}
	tuned, err := r.TuneConv("implicit", s)
	if err != nil {
		t.Fatal(err)
	}
	manualProg, err := baseline.SwDNNImplicit(s)
	if err != nil {
		t.Fatal(err)
	}
	manual, err := RunProgram(manualProg)
	if err != nil {
		t.Fatal(err)
	}
	eff, tf := Efficiency(ConvFLOPs(s), tuned.Best.Measured)
	t.Logf("implicit %v: swATOP %.4gms (eff %.0f%%, chip %.2f TF) vs swDNN %.4gms → speedup %.2fx (space %d)",
		s, tuned.Best.Measured*1e3, eff*100, tf, manual*1e3, manual/tuned.Best.Measured, tuned.Valid)
	if tuned.Best.Measured > manual {
		t.Errorf("swATOP implicit should not lose to swDNN")
	}

	// --- Winograd vs manual winograd, same layer.
	wt, err := r.TuneConv("winograd", s)
	if err != nil {
		t.Fatal(err)
	}
	mwProg, err := baseline.ManualWinograd(s)
	if err != nil {
		t.Fatal(err)
	}
	mw, err := RunProgram(mwProg)
	if err != nil {
		t.Fatal(err)
	}
	weff, wtf := Efficiency(ConvFLOPs(s), wt.Best.Measured)
	t.Logf("winograd %v: swATOP %.4gms (dir-eff %.0f%%, chip %.2f TF) vs manual %.4gms → speedup %.2fx (space %d)",
		s, wt.Best.Measured*1e3, weff*100, wtf, mw*1e3, mw/wt.Best.Measured, wt.Valid)
	if wt.Best.Measured > mw {
		t.Errorf("swATOP winograd should beat the unfused manual version")
	}

	// --- Explicit conv vs manual explicit.
	et, err := r.TuneConv("explicit", s)
	if err != nil {
		t.Fatal(err)
	}
	meProg, err := baseline.ManualExplicit(s)
	if err != nil {
		t.Fatal(err)
	}
	me, err := RunProgram(meProg)
	if err != nil {
		t.Fatal(err)
	}
	eeff, etf := Efficiency(ConvFLOPs(s), et.Best.Measured)
	t.Logf("explicit %v: swATOP %.4gms (eff %.0f%%, chip %.2f TF) vs manual %.4gms → speedup %.2fx (space %d)",
		s, et.Best.Measured*1e3, eeff*100, etf, me*1e3, me/et.Best.Measured, et.Valid)

	// --- Batch-1 implicit works while swDNN cannot.
	s1 := conv.Shape{B: 1, Ni: 256, No: 256, Ro: 28, Co: 28, Kr: 3, Kc: 3}
	t1, err := r.TuneConv("implicit", s1)
	if err != nil {
		t.Fatal(err)
	}
	e1, tf1 := Efficiency(ConvFLOPs(s1), t1.Best.Measured)
	t.Logf("implicit batch1 %v: swATOP %.4gms (eff %.0f%%, chip %.2f TF)", s1, t1.Best.Measured*1e3, e1*100, tf1)
	if _, err := baseline.SwDNNImplicit(s1); err == nil {
		t.Error("swDNN should not support batch 1")
	}

	// --- GEMM vs xMath: aligned square (xMath should win slightly),
	// unaligned (swATOP should win big).
	for _, cfg := range []struct {
		p    gemm.Params
		note string
	}{
		{gemm.Params{M: 2048, N: 2048, K: 2048}, "aligned-square"},
		{gemm.Params{M: 2000, N: 500, K: 200}, "unaligned"},
		{gemm.Params{M: 8192, N: 256, K: 1024}, "aligned-skinny"},
	} {
		gt, err := r.TuneGemm(cfg.p)
		if err != nil {
			t.Fatal(err)
		}
		xmProg, err := baseline.XMathGemm(cfg.p)
		if err != nil {
			t.Fatal(err)
		}
		xm, err := RunProgram(xmProg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("gemm %s %v: swATOP %.4gms vs xMath %.4gms → speedup %+.1f%%",
			cfg.note, cfg.p, gt.Best.Measured*1e3, xm*1e3, (xm/gt.Best.Measured-1)*100)
	}
}
