package experiments

import (
	"context"
	"fmt"
	"sort"

	"swatop/internal/autotune"
	"swatop/internal/conv"
	"swatop/internal/dsl"
	"swatop/internal/gemm"
	"swatop/internal/workloads"
)

// Fig10Row is one configuration of Fig. 10: auto-prefetching vs the same
// schedule without software prefetching.
type Fig10Row struct {
	Shape          conv.Shape
	NoPrefetch     float64
	Prefetch       float64
	ImprovementPct float64
}

// Fig10 reproduces Fig. 10: select the 8 configurations where the
// no-prefetch baseline performs best (as the paper does), then measure the
// improvement auto-prefetching brings on each.
func (r *Runner) Fig10() ([]Fig10Row, error) {
	type cand struct {
		s    conv.Shape
		st   dsl.Strategy
		base float64
	}
	var shapes []conv.Shape
	for i, s := range workloads.Listing1(32) {
		if i%7 != 0 {
			continue // 11 candidates is enough to pick the best 8 from
		}
		shapes = append(shapes, s)
	}
	cands, err := collectRows(r, len(shapes), func(i int) (cand, bool, error) {
		s := shapes[i]
		op, err := conv.NewImplicitOp(s)
		if err != nil {
			return cand{}, false, err
		}
		op.Space().DoubleBuffer = []bool{false}
		res, err := autotune.ModelBasedCtx(context.Background(), op, r.Model, autotune.Options{Metrics: r.Metrics})
		if err != nil {
			return cand{}, false, fmt.Errorf("fig10 %v: %w", s, err)
		}
		// Rank baselines by efficiency (time per flop) so "performs best"
		// is shape-size independent.
		return cand{s: s, st: res.Best.Strategy, base: res.Best.Measured}, true, nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(cands, func(i, j int) bool {
		ei := cands[i].base / float64(cands[i].s.FLOPs())
		ej := cands[j].base / float64(cands[j].s.FLOPs())
		return ei < ej
	})
	if len(cands) > 8 {
		cands = cands[:min(12, len(cands))]
	}
	var out []Fig10Row
	for _, c := range cands {
		if len(out) >= 8 {
			break
		}
		op, err := conv.NewImplicitOp(c.s)
		if err != nil {
			return nil, err
		}
		st := c.st
		st.DoubleBuffer = true
		prog, err := op.Compile(st)
		if err != nil {
			// The doubled frames of this schedule do not fit the SPM:
			// prefetching is not applicable to it, as on real hardware.
			continue
		}
		pf, err := RunProgram(prog)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig10Row{
			Shape:          c.s,
			NoPrefetch:     c.base,
			Prefetch:       pf,
			ImprovementPct: (c.base/pf - 1) * 100,
		})
	}
	return out, nil
}

// Fig11Row is one unaligned GEMM of Fig. 11: boundary-processing overhead
// of lightweight vs traditional zero padding, relative to the boundary-free
// ideal (the same schedule on extents rounded up to tile multiples).
type Fig11Row struct {
	Params       gemm.Params
	IdealSec     float64
	LightPct     float64 // lightweight overhead, percent of ideal
	TraditionPct float64
}

// Fig11 reproduces Fig. 11 over the Listing-2 unaligned shapes, keeping
// (as the paper does) the cases whose traditional overhead exceeds 10%.
func (r *Runner) Fig11() ([]Fig11Row, error) {
	var shapes []gemm.Params
	for i, p := range workloads.Listing2Unaligned() {
		if r.Quick && i%9 != 0 {
			continue
		}
		shapes = append(shapes, p)
	}
	return collectRows(r, len(shapes), func(i int) (Fig11Row, bool, error) {
		p := shapes[i]
		op, err := gemm.NewOp(p)
		if err != nil {
			return Fig11Row{}, false, err
		}
		res, err := autotune.ModelBasedCtx(context.Background(), op, r.Model, autotune.Options{Metrics: r.Metrics})
		if err != nil {
			return Fig11Row{}, false, fmt.Errorf("fig11 %v: %w", p, err)
		}
		st := res.Best.Strategy

		light := res.Best.Measured

		tst := st
		tst.Padding = dsl.PadTraditional
		tprog, err := op.Compile(tst)
		if err != nil {
			return Fig11Row{}, false, err
		}
		trad, err := RunProgram(tprog)
		if err != nil {
			return Fig11Row{}, false, err
		}

		// Boundary-free ideal: the same schedule on the rounded-up
		// problem (all extents multiples of their factors).
		ip := gemm.Params{
			M: roundUp(p.M, st.Factors["m"]),
			N: roundUp(p.N, st.Factors["n"]),
			K: roundUp(p.K, st.Factors["k"]),
		}
		iop, err := gemm.NewOp(ip)
		if err != nil {
			return Fig11Row{}, false, err
		}
		iprog, err := iop.Compile(st)
		if err != nil {
			return Fig11Row{}, false, err
		}
		ideal, err := RunProgram(iprog)
		if err != nil {
			return Fig11Row{}, false, err
		}

		row := Fig11Row{
			Params:       p,
			IdealSec:     ideal,
			LightPct:     (light/ideal - 1) * 100,
			TraditionPct: (trad/ideal - 1) * 100,
		}
		return row, row.TraditionPct > 10, nil
	})
}

func roundUp(v, f int) int {
	if f <= 0 {
		return v
	}
	return (v + f - 1) / f * f
}
