package experiments

import (
	"context"
	"fmt"

	"swatop/internal/autotune"
	"swatop/internal/conv"
	"swatop/internal/workloads"
)

// Table3Row is one network of Table 3: tuning the implicit CONV of every
// layer with the black-box tuner vs swATOP's model-based tuner. Times are
// consumed machine seconds (per-candidate compile+launch+run for the
// black-box tuner; the paper's hours-vs-minutes axis); host wall seconds
// are reported alongside.
type Table3Row struct {
	Net         string
	Layers      int
	SpaceTotal  int
	SpaceAvg    float64
	BlackBoxSec float64 // machine seconds, total
	BlackBoxAvg float64
	SwATOPSec   float64
	SwATOPAvg   float64
	SpeedupX    float64
	WallBlack   float64 // host wall seconds
	WallSwATOP  float64
}

// Table3 reproduces Table 3 at batch 32 (the training configuration).
// Layers are tuned in parallel across r.Workers goroutines; the per-network
// machine-time aggregation keeps the deterministic layer order, so every
// reported number is identical for any worker count (host wall sums are the
// total of per-layer wall times, not elapsed time).
func (r *Runner) Table3() ([]Table3Row, error) {
	type job struct {
		net   string
		layer workloads.ConvLayer
	}
	var jobs []job
	for _, net := range []string{"vgg16", "resnet", "yolo"} {
		layers := workloads.Networks()[net]
		for li, l := range layers {
			if r.Quick && li >= 5 {
				break
			}
			if !methodApplies("implicit", l.Shape(32)) {
				continue
			}
			jobs = append(jobs, job{net: net, layer: l})
		}
	}
	type tuned struct {
		net    string
		bb, mb autotune.Result
	}
	results, err := collectRows(r, len(jobs), func(i int) (tuned, bool, error) {
		j := jobs[i]
		op, err := conv.NewImplicitOp(j.layer.Shape(32))
		if err != nil {
			return tuned{}, false, err
		}
		bb, err := autotune.BlackBoxCtx(context.Background(), op, autotune.Options{Metrics: r.Metrics})
		if err != nil {
			return tuned{}, false, fmt.Errorf("table3 %s blackbox: %w", j.layer, err)
		}
		mb, err := autotune.ModelBasedCtx(context.Background(), op, r.Model, autotune.Options{Metrics: r.Metrics})
		if err != nil {
			return tuned{}, false, fmt.Errorf("table3 %s swATOP: %w", j.layer, err)
		}
		return tuned{net: j.net, bb: bb, mb: mb}, true, nil
	})
	if err != nil {
		return nil, err
	}
	var out []Table3Row
	for _, net := range []string{"vgg16", "resnet", "yolo"} {
		row := Table3Row{Net: net}
		for _, t := range results {
			if t.net != net {
				continue
			}
			row.Layers++
			row.SpaceTotal += t.bb.Valid
			row.BlackBoxSec += t.bb.MachineSeconds
			row.SwATOPSec += t.mb.MachineSeconds
			row.WallBlack += t.bb.WallSeconds
			row.WallSwATOP += t.mb.WallSeconds
		}
		if row.Layers == 0 {
			continue
		}
		row.SpaceAvg = float64(row.SpaceTotal) / float64(row.Layers)
		row.BlackBoxAvg = row.BlackBoxSec / float64(row.Layers)
		row.SwATOPAvg = row.SwATOPSec / float64(row.Layers)
		row.SpeedupX = row.BlackBoxSec / row.SwATOPSec
		out = append(out, row)
	}
	return out, nil
}

// Fig9Row is one Listing-1 configuration of Fig. 9: the ratio of the
// model-picked schedule's performance to the true (brute-force) best.
type Fig9Row struct {
	Shape conv.Shape
	Batch int
	Ratio float64 // bestTime / modelPickTime, ≤ 1
}

// Fig9 reproduces Fig. 9 on the Listing-1 grid (batch 32; the paper pools
// all 225 points — full mode covers one batch's 75, quick a stratified 15).
// Configurations run in parallel across r.Workers goroutines.
func (r *Runner) Fig9() ([]Fig9Row, error) {
	var shapes []conv.Shape
	for i, s := range workloads.Listing1(32) {
		if r.Quick && i%7 != 0 {
			continue
		}
		shapes = append(shapes, s)
	}
	return collectRows(r, len(shapes), func(i int) (Fig9Row, bool, error) {
		s := shapes[i]
		op, err := conv.NewImplicitOp(s)
		if err != nil {
			return Fig9Row{}, false, err
		}
		bb, err := autotune.BlackBoxCtx(context.Background(), op, autotune.Options{Metrics: r.Metrics})
		if err != nil {
			return Fig9Row{}, false, fmt.Errorf("fig9 %v blackbox: %w", s, err)
		}
		mb, err := autotune.ModelBasedCtx(context.Background(), op, r.Model, autotune.Options{Metrics: r.Metrics})
		if err != nil {
			return Fig9Row{}, false, fmt.Errorf("fig9 %v model: %w", s, err)
		}
		return Fig9Row{Shape: s, Batch: 32, Ratio: bb.Best.Measured / mb.Best.Measured}, true, nil
	})
}

// Fig9Summary reports the average and worst ratio.
func Fig9Summary(rows []Fig9Row) (avg, worst float64) {
	if len(rows) == 0 {
		return 0, 0
	}
	worst = 1
	for _, r := range rows {
		avg += r.Ratio
		if r.Ratio < worst {
			worst = r.Ratio
		}
	}
	return avg / float64(len(rows)), worst
}
