package experiments

import (
	"fmt"

	"swatop/internal/autotune"
	"swatop/internal/conv"
	"swatop/internal/workloads"
)

// Table3Row is one network of Table 3: tuning the implicit CONV of every
// layer with the black-box tuner vs swATOP's model-based tuner. Times are
// consumed machine seconds (per-candidate compile+launch+run for the
// black-box tuner; the paper's hours-vs-minutes axis); host wall seconds
// are reported alongside.
type Table3Row struct {
	Net         string
	Layers      int
	SpaceTotal  int
	SpaceAvg    float64
	BlackBoxSec float64 // machine seconds, total
	BlackBoxAvg float64
	SwATOPSec   float64
	SwATOPAvg   float64
	SpeedupX    float64
	WallBlack   float64 // host wall seconds
	WallSwATOP  float64
}

// Table3 reproduces Table 3 at batch 32 (the training configuration).
func (r *Runner) Table3() ([]Table3Row, error) {
	var out []Table3Row
	for _, net := range []string{"vgg16", "resnet", "yolo"} {
		layers := workloads.Networks()[net]
		row := Table3Row{Net: net}
		for li, l := range layers {
			if r.Quick && li >= 5 {
				break
			}
			s := l.Shape(32)
			if !methodApplies("implicit", s) {
				continue
			}
			op, err := conv.NewImplicitOp(s)
			if err != nil {
				return nil, err
			}
			bb, err := autotune.BlackBox(op)
			if err != nil {
				return nil, fmt.Errorf("table3 %s blackbox: %w", l, err)
			}
			mb, err := autotune.ModelBased(op, r.Model)
			if err != nil {
				return nil, fmt.Errorf("table3 %s swATOP: %w", l, err)
			}
			row.Layers++
			row.SpaceTotal += bb.Valid
			row.BlackBoxSec += bb.MachineSeconds
			row.SwATOPSec += mb.MachineSeconds
			row.WallBlack += bb.WallSeconds
			row.WallSwATOP += mb.WallSeconds
		}
		if row.Layers == 0 {
			continue
		}
		row.SpaceAvg = float64(row.SpaceTotal) / float64(row.Layers)
		row.BlackBoxAvg = row.BlackBoxSec / float64(row.Layers)
		row.SwATOPAvg = row.SwATOPSec / float64(row.Layers)
		row.SpeedupX = row.BlackBoxSec / row.SwATOPSec
		out = append(out, row)
	}
	return out, nil
}

// Fig9Row is one Listing-1 configuration of Fig. 9: the ratio of the
// model-picked schedule's performance to the true (brute-force) best.
type Fig9Row struct {
	Shape conv.Shape
	Batch int
	Ratio float64 // bestTime / modelPickTime, ≤ 1
}

// Fig9 reproduces Fig. 9 on the Listing-1 grid (batch 32; the paper pools
// all 225 points — full mode covers one batch's 75, quick a stratified 15).
func (r *Runner) Fig9() ([]Fig9Row, error) {
	shapes := workloads.Listing1(32)
	var out []Fig9Row
	for i, s := range shapes {
		if r.Quick && i%7 != 0 {
			continue
		}
		op, err := conv.NewImplicitOp(s)
		if err != nil {
			return nil, err
		}
		bb, err := autotune.BlackBox(op)
		if err != nil {
			return nil, fmt.Errorf("fig9 %v blackbox: %w", s, err)
		}
		mb, err := autotune.ModelBased(op, r.Model)
		if err != nil {
			return nil, fmt.Errorf("fig9 %v model: %w", s, err)
		}
		out = append(out, Fig9Row{Shape: s, Batch: 32, Ratio: bb.Best.Measured / mb.Best.Measured})
	}
	return out, nil
}

// Fig9Summary reports the average and worst ratio.
func Fig9Summary(rows []Fig9Row) (avg, worst float64) {
	if len(rows) == 0 {
		return 0, 0
	}
	worst = 1
	for _, r := range rows {
		avg += r.Ratio
		if r.Ratio < worst {
			worst = r.Ratio
		}
	}
	return avg / float64(len(rows)), worst
}
