package experiments

import (
	"context"
	"fmt"

	"swatop/internal/baseline"
	"swatop/internal/gemm"
	"swatop/internal/workloads"
)

// GemmRow is one Listing-2 shape: swATOP's tuned GEMM vs xMath.
type GemmRow struct {
	Params  gemm.Params
	Aligned bool
	SwATOP  float64
	XMath   float64
}

// Table2Row aggregates one Table 2 quadrant.
type Table2Row struct {
	Aligned      bool
	Faster       int
	AvgFasterPct float64
	Slower       int
	AvgSlowerPct float64
}

// GemmSweep runs the Listing-2 comparison (cached). Shapes are tuned in
// parallel across r.Workers goroutines; row order is the deterministic
// listing order regardless of worker count.
func (r *Runner) GemmSweep() ([]GemmRow, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gemmCache != nil {
		return r.gemmCache, nil
	}
	type job struct {
		p       gemm.Params
		aligned bool
	}
	var jobs []job
	add := func(ps []gemm.Params, aligned bool, stride int) {
		for i, p := range ps {
			if r.Quick && i%stride != 0 {
				continue
			}
			jobs = append(jobs, job{p: p, aligned: aligned})
		}
	}
	add(workloads.Listing2Unaligned(), false, 9)
	add(workloads.Listing2Aligned(), true, 14)
	rows, err := collectRows(r, len(jobs), func(i int) (GemmRow, bool, error) {
		j := jobs[i]
		tuned, err := r.tuneGemm(context.Background(), j.p, 1)
		if err != nil {
			return GemmRow{}, false, fmt.Errorf("gemm sweep %v: %w", j.p, err)
		}
		xm, err := baseline.XMathGemm(j.p)
		if err != nil {
			return GemmRow{}, false, err
		}
		xt, err := RunProgram(xm)
		if err != nil {
			return GemmRow{}, false, err
		}
		return GemmRow{Params: j.p, Aligned: j.aligned, SwATOP: tuned.Best.Measured, XMath: xt}, true, nil
	})
	if err != nil {
		return nil, err
	}
	r.gemmCache = rows
	return r.gemmCache, nil
}

// Table2 reproduces Table 2: swATOP vs xMath faster/slower counts and
// average speedups, split by alignment.
func (r *Runner) Table2() ([]Table2Row, error) {
	rows, err := r.GemmSweep()
	if err != nil {
		return nil, err
	}
	agg := map[bool]*Table2Row{
		true:  {Aligned: true},
		false: {Aligned: false},
	}
	for _, row := range rows {
		a := agg[row.Aligned]
		if row.SwATOP <= row.XMath {
			a.Faster++
			a.AvgFasterPct += row.XMath/row.SwATOP - 1
		} else {
			a.Slower++
			a.AvgSlowerPct += 1 - row.XMath/row.SwATOP
		}
	}
	for _, a := range agg {
		if a.Faster > 0 {
			a.AvgFasterPct = a.AvgFasterPct / float64(a.Faster) * 100
		}
		if a.Slower > 0 {
			a.AvgSlowerPct = a.AvgSlowerPct / float64(a.Slower) * 100
		}
	}
	return []Table2Row{*agg[true], *agg[false]}, nil
}
