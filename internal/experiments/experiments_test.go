package experiments

import (
	"strings"
	"testing"

	"swatop/internal/conv"
	"swatop/internal/gemm"
	"swatop/internal/sw26010"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	want := []string{"substrate", "fig5", "fig6", "fig7", "table1", "fig8",
		"table2", "table3", "fig9", "fig10", "fig11"}
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, all[i].ID, id)
		}
		if all[i].Title == "" || all[i].Run == nil {
			t.Errorf("%s incomplete", id)
		}
	}
	if _, err := ByID("fig5"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestSubstrateExperiment(t *testing.T) {
	r := &Runner{Quick: true}
	tbl, err := runSubstrate(r)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"22.6 GB/s", "647.25 GB/s", "3.06 TFLOPS"} {
		if !strings.Contains(out, want) {
			t.Errorf("substrate table missing %q", want)
		}
	}
}

func TestEfficiencyAccounting(t *testing.T) {
	eff, chip := Efficiency(sw26010.PeakGFlops*1e9, 1.0) // exactly peak for 1s
	if eff < 0.999 || eff > 1.001 {
		t.Fatalf("eff = %f, want 1.0", eff)
	}
	wantChip := sw26010.PeakGFlops * sw26010.NumCG / 1e3
	if chip < wantChip*0.999 || chip > wantChip*1.001 {
		t.Fatalf("chip = %f, want %f", chip, wantChip)
	}
}

func TestMethodApplies(t *testing.T) {
	small := conv.Shape{B: 1, Ni: 3, No: 8, Ro: 8, Co: 8, Kr: 3, Kc: 3}
	if methodApplies("implicit", small) {
		t.Fatal("implicit must exclude tiny Ni")
	}
	if !methodApplies("explicit", small) {
		t.Fatal("explicit applies everywhere")
	}
	odd := conv.Shape{B: 1, Ni: 64, No: 64, Ro: 7, Co: 7, Kr: 3, Kc: 3}
	if methodApplies("winograd", odd) {
		t.Fatal("winograd must exclude odd extents")
	}
}

func TestRunProgramAndTuners(t *testing.T) {
	r, err := NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.TuneGemm(gemm.Params{M: 64, N: 64, K: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Measured <= 0 {
		t.Fatal("non-positive measured time")
	}
	if _, err := r.ConvOp("bogus", conv.Shape{}); err == nil {
		t.Fatal("unknown method must error")
	}
	cres, err := r.TuneConv("implicit", conv.Shape{B: 32, Ni: 32, No: 32, Ro: 8, Co: 8, Kr: 3, Kc: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Best.Measured <= 0 {
		t.Fatal("non-positive conv time")
	}
}

func TestFig9SummaryMath(t *testing.T) {
	rows := []Fig9Row{{Ratio: 1.0}, {Ratio: 0.9}, {Ratio: 0.95}}
	avg, worst := Fig9Summary(rows)
	if worst != 0.9 {
		t.Fatalf("worst = %f", worst)
	}
	if avg < 0.949 || avg > 0.951 {
		t.Fatalf("avg = %f", avg)
	}
	if a, w := Fig9Summary(nil); a != 0 || w != 0 {
		t.Fatal("empty summary should be zero")
	}
}
