package experiments

import (
	"fmt"
	"sync"
	"testing"
)

// TestSweepWorkerCountInvariance checks the sweep-level guarantee: every
// reported row — schedules, simulated times, ledger — is identical whether
// layers are tuned sequentially or across a worker pool.
func TestSweepWorkerCountInvariance(t *testing.T) {
	r1, err := NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	r1.Quick = true
	r1.Workers = 1
	r2 := &Runner{Model: r1.Model, Quick: true, Workers: 8}

	rows1, err := r1.GemmSweep()
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := r2.GemmSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows1) != len(rows2) {
		t.Fatalf("row counts differ: %d vs %d", len(rows1), len(rows2))
	}
	for i := range rows1 {
		if fmt.Sprintf("%v", rows1[i]) != fmt.Sprintf("%v", rows2[i]) {
			t.Fatalf("row %d differs:\nseq %v\npar %v", i, rows1[i], rows2[i])
		}
	}
}

// TestRunnerConcurrentSweeps hammers the cached sweeps from several
// goroutines; under -race this proves the cache and progress mutexes hold.
func TestRunnerConcurrentSweeps(t *testing.T) {
	r, err := NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	r.Quick = true
	r.Workers = 4
	var progressMax int
	r.Progress = func(done, total int) {
		if done > progressMax {
			progressMax = done
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.GemmSweep(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if progressMax == 0 {
		t.Fatal("progress callback never fired")
	}
	if _, err := r.Table2(); err != nil {
		t.Fatal(err)
	}
}
