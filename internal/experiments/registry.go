package experiments

import (
	"fmt"
	"sort"

	"swatop/internal/report"
	"swatop/internal/sw26010"
	"swatop/internal/workloads"
)

// Experiment is a runnable, named reproduction of one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) (*report.Table, error)
}

// All returns the experiment registry in paper order.
func All() []Experiment {
	return []Experiment{
		{"substrate", "Substrate validation vs Xu et al. [24]", runSubstrate},
		{"fig5", "Fig. 5: Implicit CONV vs swDNN on three CNNs", runFig5},
		{"fig6", "Fig. 6: Winograd CONV vs manual on applicable layers", runFig6},
		{"fig7", "Fig. 7: Explicit CONV vs manual on three CNNs", runFig7},
		{"table1", "Table 1: 75-configuration sweep, faster/slower counts", runTable1},
		{"fig8", "Fig. 8: Throughput/efficiency of three CONV methods", runFig8},
		{"table2", "Table 2: GEMM vs xMath on Listing-2 shapes", runTable2},
		{"table3", "Table 3: Tuning time, black-box vs swATOP", runTable3},
		{"fig9", "Fig. 9: Model-picked vs brute-force best performance", runFig9},
		{"fig10", "Fig. 10: Auto-prefetching vs no-prefetch baseline", runFig10},
		{"fig11", "Fig. 11: Lightweight vs traditional zero padding", runFig11},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("unknown experiment %q", id)
}

func runSubstrate(r *Runner) (*report.Table, error) {
	t := report.NewTable("Simulated substrate vs published SW26010 measurements",
		"microbenchmark", "simulated", "published [24]")
	triad := sw26010.StreamTriadDMA(8192)
	t.AddRow("DMA stream triad", fmt.Sprintf("%.1f GB/s", triad.GBperSecond), "22.6 GB/s")
	gl := sw26010.StreamGLDGST(1 << 26)
	t.AddRow("gld/gst bandwidth", fmt.Sprintf("%.2f GB/s", gl.GBperSecond), "1.48 GB/s")
	rc := sw26010.RegCommBroadcast(1 << 16)
	t.AddRow("register comm aggregate", fmt.Sprintf("%.0f GB/s", rc.GBperSecond), "647.25 GB/s")
	t.AddRow("chip SP peak", fmt.Sprintf("%.2f TFLOPS", sw26010.PeakGFlops*sw26010.NumCG/1e3), "3.06 TFLOPS")
	return t, nil
}

func layerTable(title string, rows []LayerRow) *report.Table {
	t := report.NewTable(title,
		"layer", "batch", "swATOP", "manual", "speedup", "eff", "chip TFLOPS", "space")
	for _, row := range rows {
		manual, speed := "n/a", "∞"
		if !row.ManualNA {
			manual = report.Ms(row.Manual)
			speed = fmt.Sprintf("%.2fx", row.Speedup)
		}
		// Budgeted (-searcher) runs show measured/space coverage instead of
		// pretending the walk visited everything; exhaustive rows keep the
		// valid-candidate count, byte-identical to earlier releases.
		space := fmt.Sprint(row.SpaceSize)
		if row.Measured > 0 && row.SpacePoints > 0 {
			space = fmt.Sprintf("%d/%d (%.0f%%)", row.Measured, row.SpacePoints,
				100*float64(row.Measured)/float64(row.SpacePoints))
		}
		t.AddRow(fmt.Sprintf("%s/%s", row.Net, row.Layer), row.Batch,
			report.Ms(row.SwATOP), manual, speed,
			fmt.Sprintf("%.0f%%", row.Eff*100), fmt.Sprintf("%.2f", row.ChipTFlops), space)
	}
	return t
}

func summarizeFig(t *report.Table, rows []LayerRow) {
	for _, b := range workloads.Batches() {
		if avg, n := AvgSpeedup(rows, b); n > 0 {
			t.AddRow(fmt.Sprintf("— average (batch %d, %d layers)", b, n), b, "", "",
				fmt.Sprintf("%.2fx", avg), "", "", "")
		}
	}
}

func runFig5(r *Runner) (*report.Table, error) {
	rows, err := r.Fig5(workloads.Batches())
	if err != nil {
		return nil, err
	}
	t := layerTable("Fig. 5 — Implicit CONV vs swDNN (batch 1 has no manual version)", rows)
	summarizeFig(t, rows)
	return t, nil
}

func runFig6(r *Runner) (*report.Table, error) {
	rows, err := r.Fig6(workloads.Batches())
	if err != nil {
		return nil, err
	}
	t := layerTable("Fig. 6 — Winograd CONV vs manual (xMath-based) implementation", rows)
	summarizeFig(t, rows)
	return t, nil
}

func runFig7(r *Runner) (*report.Table, error) {
	rows, err := r.Fig7(workloads.Batches())
	if err != nil {
		return nil, err
	}
	t := layerTable("Fig. 7 — Explicit CONV vs manual (im2col + xMath) implementation", rows)
	summarizeFig(t, rows)
	return t, nil
}

func runTable1(r *Runner) (*report.Table, error) {
	cells, err := r.Table1()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 1 — Listing-1 sweep vs best manual implementation",
		"method", "batch", "faster", "avg speedup", "slower", "avg slowdown")
	for _, c := range cells {
		fast := fmt.Sprintf("%+.0f%%", c.AvgFasterPct)
		if c.FasterInf {
			fast = "+∞%"
		}
		slow := "-"
		if c.Slower > 0 {
			slow = fmt.Sprintf("-%.0f%%", c.AvgSlowerPct)
		}
		t.AddRow(c.Method, c.Batch, c.Faster, fast, c.Slower, slow)
	}
	return t, nil
}

func runFig8(r *Runner) (*report.Table, error) {
	rows, err := r.Fig8()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Fig. 8 — throughput/efficiency over the Listing-1 sweep (direct-conv FLOPs)",
		"method", "batch", "avg chip TFLOPS", "avg eff", "min eff", "max eff")
	for _, row := range rows {
		t.AddRow(row.Method, row.Batch,
			fmt.Sprintf("%.2f", row.AvgTFlops),
			fmt.Sprintf("%.0f%%", row.AvgEff*100),
			fmt.Sprintf("%.0f%%", row.MinEff*100),
			fmt.Sprintf("%.0f%%", row.MaxEff*100))
	}
	return t, nil
}

func runTable2(r *Runner) (*report.Table, error) {
	rows, err := r.Table2()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 2 — swATOP vs xMath on matrix multiplication",
		"shapes", "faster", "avg speedup", "slower", "avg slowdown")
	for _, row := range rows {
		name := "unaligned"
		if row.Aligned {
			name = "aligned"
		}
		t.AddRow(name, row.Faster, fmt.Sprintf("%+.1f%%", row.AvgFasterPct),
			row.Slower, fmt.Sprintf("-%.1f%%", row.AvgSlowerPct))
	}
	return t, nil
}

func runTable3(r *Runner) (*report.Table, error) {
	rows, err := r.Table3()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 3 — tuning cost of the implicit CONV layers (machine time)",
		"network", "layers", "space total", "space avg", "black-box", "bb avg/layer",
		"swATOP", "sw avg/layer", "speedup", "host wall bb", "host wall sw")
	for _, row := range rows {
		t.AddRow(row.Net, row.Layers, row.SpaceTotal, fmt.Sprintf("%.1f", row.SpaceAvg),
			report.Duration(row.BlackBoxSec), report.Duration(row.BlackBoxAvg),
			report.Duration(row.SwATOPSec), report.Duration(row.SwATOPAvg),
			fmt.Sprintf("%.0fx", row.SpeedupX),
			report.Duration(row.WallBlack), report.Duration(row.WallSwATOP))
	}
	return t, nil
}

func runFig9(r *Runner) (*report.Table, error) {
	rows, err := r.Fig9()
	if err != nil {
		return nil, err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Ratio < rows[j].Ratio })
	t := report.NewTable("Fig. 9 — model-picked performance / brute-force best", "shape", "ratio")
	for _, row := range rows {
		t.AddRow(row.Shape.String(), fmt.Sprintf("%.3f", row.Ratio))
	}
	avg, worst := Fig9Summary(rows)
	t.AddRow("— average", fmt.Sprintf("%.3f", avg))
	t.AddRow("— worst", fmt.Sprintf("%.3f", worst))
	return t, nil
}

func runFig10(r *Runner) (*report.Table, error) {
	rows, err := r.Fig10()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Fig. 10 — auto-prefetching vs baseline (8 best-for-baseline configs)",
		"shape", "baseline", "prefetch", "improvement")
	sum := 0.0
	for _, row := range rows {
		t.AddRow(row.Shape.String(), report.Ms(row.NoPrefetch), report.Ms(row.Prefetch),
			fmt.Sprintf("+%.1f%%", row.ImprovementPct))
		sum += row.ImprovementPct
	}
	if len(rows) > 0 {
		t.AddRow("— average", "", "", fmt.Sprintf("+%.1f%%", sum/float64(len(rows))))
	}
	return t, nil
}

func runFig11(r *Runner) (*report.Table, error) {
	rows, err := r.Fig11()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Fig. 11 — boundary-processing overhead (cases with traditional > 10%)",
		"shape", "ideal", "lightweight", "traditional")
	var lsum, tsum float64
	for _, row := range rows {
		t.AddRow(row.Params.String(), report.Ms(row.IdealSec),
			fmt.Sprintf("%+.1f%%", row.LightPct), fmt.Sprintf("%+.1f%%", row.TraditionPct))
		lsum += row.LightPct
		tsum += row.TraditionPct
	}
	if len(rows) > 0 {
		n := float64(len(rows))
		t.AddRow("— average", "", fmt.Sprintf("%+.1f%%", lsum/n), fmt.Sprintf("%+.1f%%", tsum/n))
	}
	return t, nil
}
