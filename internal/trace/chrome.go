package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome/Perfetto trace-event JSON format
// (the "JSON Array Format" with an object wrapper). ph "X" is a complete
// duration event; ph "M" carries metadata such as thread names. Timestamps
// and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// chromeTID maps the machine's channels to fixed Perfetto track ids, so
// every exported trace lays out the same way: compute on top, then
// transforms, the DMA engine, and stalls. Kinds outside the fixed set get
// tracks after these, in first-appearance order.
var chromeTID = map[Kind]int{
	KindGemm:      1,
	KindTransform: 2,
	KindDMA:       3,
	KindWait:      4,
}

// WriteChromeTrace writes the log in the Chrome trace-event JSON format:
// the output opens directly in ui.perfetto.dev (or chrome://tracing) and
// shows the compute, transform, DMA and wait channels as separate tracks
// with event Args preserved. Each core group becomes its own process
// (pid = group + 1), so a fleet timeline renders as stacked per-group
// track lanes. Events are emitted in insertion order, so a deterministic
// execution yields a byte-identical trace.
func (l *Log) WriteChromeTrace(w io.Writer) error {
	groups := l.Groups()
	tids := map[Kind]int{}
	nextTID := 5
	tidFor := func(k Kind) int {
		if tid, ok := tids[k]; ok {
			return tid
		}
		tid, ok := chromeTID[k]
		if !ok {
			tid = nextTID
			nextTID++
		}
		tids[k] = tid
		return tid
	}

	type track struct {
		group int
		kind  Kind
	}
	seen := map[track]bool{}
	var order []track

	events := make([]chromeEvent, 0, len(l.Events)+8)
	for _, ev := range l.Events {
		ce := chromeEvent{
			Name: ev.Label,
			Cat:  string(ev.Kind),
			Ph:   "X",
			TS:   ev.Start * 1e6,
			Dur:  ev.Dur * 1e6,
			PID:  ev.Group + 1,
			TID:  tidFor(ev.Kind),
		}
		if tr := (track{ev.Group, ev.Kind}); !seen[tr] {
			seen[tr] = true
			order = append(order, tr)
		}
		if ce.Name == "" {
			ce.Name = string(ev.Kind)
		}
		if len(ev.Args) > 0 {
			ce.Args = make(map[string]any, len(ev.Args))
			for k, v := range ev.Args {
				ce.Args[k] = v
			}
		}
		events = append(events, ce)
	}

	// Name each process and each used track. Metadata events go first so
	// viewers label tracks before populating them. A single-group log keeps
	// the historical process name; a fleet log numbers the groups.
	var meta []chromeEvent
	for g := 0; g < groups; g++ {
		name := "sw26010 core group (simulated)"
		if groups > 1 {
			name = fmt.Sprintf("sw26010 core group %d (simulated)", g)
		}
		meta = append(meta, chromeEvent{
			Name: "process_name", Ph: "M", PID: g + 1, TID: 0,
			Args: map[string]any{"name": name},
		})
	}
	for _, tr := range order {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: tr.group + 1, TID: tids[tr.kind],
			Args: map[string]any{"name": string(tr.kind)},
		})
	}

	data, err := json.MarshalIndent(chromeTrace{
		DisplayTimeUnit: "ms",
		TraceEvents:     append(meta, events...),
	}, "", " ")
	if err != nil {
		return fmt.Errorf("trace: chrome export: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
