package trace

import (
	"fmt"
	"strings"
)

// Roofline is a utilization summary of one timeline against the machine's
// peaks: how close compute came to peak FLOP throughput, how close the DMA
// engine came to its published stream bandwidth, and how much of the DMA
// time double buffering hid behind compute. The trace package stays
// machine-agnostic — callers pass the counters and peaks (for the SW26010:
// sw26010.PeakGFlops and DMAEffBandwidth, the paper's 22.6 GB/s).
type Roofline struct {
	// Seconds is the timeline length (Log.End()).
	Seconds float64
	// AchievedGFLOPS is flops/Seconds; PeakGFLOPS the machine peak.
	AchievedGFLOPS float64
	PeakGFLOPS     float64
	// DMAGBps is dmaBytes/Seconds; PeakDMAGBps the stream bandwidth.
	DMAGBps     float64
	PeakDMAGBps float64
	// ComputeBusy / DMABusy are the unioned busy times of the two channels;
	// HiddenDMA is their overlap (DMA time hidden behind compute).
	ComputeBusy float64
	DMABusy     float64
	HiddenDMA   float64
}

// Roofline computes the utilization summary from the timeline and the
// machine counters accumulated during it: flops executed, DMA bytes
// touched, and the machine's peak compute and DMA-bandwidth rooflines
// (peakGFlops in GFLOPS, peakDMABytesPerSec in bytes/s).
func (l *Log) Roofline(flops, dmaBytes int64, peakGFlops, peakDMABytesPerSec float64) Roofline {
	r := Roofline{
		Seconds:     l.End(),
		PeakGFLOPS:  peakGFlops,
		PeakDMAGBps: peakDMABytesPerSec / 1e9,
		ComputeBusy: l.BusyTime(KindGemm),
		DMABusy:     l.BusyTime(KindDMA),
		HiddenDMA:   l.Overlap(KindGemm, KindDMA),
	}
	if r.Seconds > 0 {
		r.AchievedGFLOPS = float64(flops) / r.Seconds / 1e9
		r.DMAGBps = float64(dmaBytes) / r.Seconds / 1e9
	}
	return r
}

// ComputeUtilization is achieved/peak GFLOPS in [0,1] (Winograd schedules
// can exceed 1 when callers pass direct-convolution FLOP counts).
func (r Roofline) ComputeUtilization() float64 {
	if r.PeakGFLOPS <= 0 {
		return 0
	}
	return r.AchievedGFLOPS / r.PeakGFLOPS
}

// DMAUtilization is achieved/peak DMA bandwidth in [0,1].
func (r Roofline) DMAUtilization() float64 {
	if r.PeakDMAGBps <= 0 {
		return 0
	}
	return r.DMAGBps / r.PeakDMAGBps
}

// HiddenDMAFraction is the share of DMA busy time hidden behind compute.
func (r Roofline) HiddenDMAFraction() float64 {
	if r.DMABusy <= 0 {
		return 0
	}
	return r.HiddenDMA / r.DMABusy
}

// String renders the roofline block the CLIs print under a timeline
// summary.
func (r Roofline) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "roofline over %.4g ms:\n", r.Seconds*1e3)
	fmt.Fprintf(&b, "  compute  %.1f GFLOPS of %.0f peak (%.0f%%)\n",
		r.AchievedGFLOPS, r.PeakGFLOPS, r.ComputeUtilization()*100)
	fmt.Fprintf(&b, "  dma      %.2f GB/s of %.1f peak (%.0f%%)\n",
		r.DMAGBps, r.PeakDMAGBps, r.DMAUtilization()*100)
	if r.DMABusy > 0 {
		fmt.Fprintf(&b, "  overlap  %.0f%% of DMA time hidden behind compute\n",
			r.HiddenDMAFraction()*100)
	}
	return b.String()
}
