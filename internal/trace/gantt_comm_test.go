package trace

import (
	"fmt"
	"strings"
	"testing"
)

// TestGanttCommLegend: fleet Gantt charts must attribute every comm event
// to its source and destination groups — an allgather lists every
// participating source, a gather into group0 says so.
func TestGanttCommLegend(t *testing.T) {
	l := &Log{}
	for g := 0; g < 2; g++ {
		l.AddGroupArgs(g, KindGemm, "conv head", 0, 0.004, nil)
		l.AddGroupArgs(g, KindComm, "allgather pool5", 0.004, 0.001, map[string]string{
			"src": fmt.Sprintf("group%d", g), "dst": "all groups"})
	}
	l.AddGroupArgs(1, KindComm, "gather outputs", 0.005, 0.0005, map[string]string{
		"src": "group1", "dst": "group0"})

	got := l.Gantt(64)
	for _, want := range []string{
		"comm:",
		"group0,group1 -> all groups",
		"group1 -> group0",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Gantt missing %q:\n%s", want, got)
		}
	}
	// The two allgather events (one per group) merge into one legend line.
	if n := strings.Count(got, "allgather pool5"); n != 1 {
		t.Errorf("allgather appears %d times, want one merged legend line:\n%s", n, got)
	}
}

// TestGanttCommLegendFallback: comm events without src/dst args (older
// callers) still render, with the group-derived source and an unknown
// destination.
func TestGanttCommLegendFallback(t *testing.T) {
	l := &Log{}
	l.AddGroup(0, KindGemm, "work", 0, 0.002)
	l.AddGroup(1, KindGemm, "work", 0, 0.002)
	l.AddGroup(1, KindComm, "xfer", 0.002, 0.001)
	got := l.Gantt(64)
	if !strings.Contains(got, "group1 -> ?") {
		t.Errorf("legend fallback missing group1 -> ?:\n%s", got)
	}
}
