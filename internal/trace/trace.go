// Package trace records simulated execution timelines: every GEMM call,
// transform and DMA transfer with its start time and duration on the
// machine clock. Users diagnose schedules with it — above all whether
// double buffering actually hides the DMA channel behind the compute
// channel (the effect Fig. 10 measures).
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies timeline events.
type Kind string

// Event kinds.
const (
	KindGemm      Kind = "gemm"
	KindDMA       Kind = "dma"
	KindTransform Kind = "transform"
	KindWait      Kind = "wait"
	// KindComm marks modeled cross-core-group communication (gathers,
	// pipeline stage hand-offs) on a fleet timeline.
	KindComm Kind = "comm"
)

// Event is one interval on the timeline.
type Event struct {
	Kind  Kind
	Label string
	Start float64 // seconds on the simulated clock
	Dur   float64
	// Group is the simulated core group the event executed on. Single-
	// machine timelines leave it 0; fleet timelines stamp it via
	// MergeGroup/AddGroup so parallel groups keep distinct rows in the
	// Gantt and distinct process tracks in the Chrome export.
	Group int
	// Args is optional span metadata (operator name, layer index, selected
	// strategy, ...) carried into the Chrome-trace export. Nil for plain
	// events; shared, not copied, by Merge.
	Args map[string]string
}

// Log accumulates events of one run.
type Log struct {
	Events []Event
}

// Add appends an event on group 0.
func (l *Log) Add(kind Kind, label string, start, dur float64) {
	l.Events = append(l.Events, Event{Kind: kind, Label: label, Start: start, Dur: dur})
}

// AddGroup appends an event on a specific core group.
func (l *Log) AddGroup(group int, kind Kind, label string, start, dur float64) {
	l.Events = append(l.Events, Event{Kind: kind, Label: label, Start: start, Dur: dur, Group: group})
}

// AddGroupArgs appends a group event carrying Args metadata. Comm events
// use it to label their source and destination groups ("src"/"dst"), which
// the fleet Gantt renders as a legend under the rows.
func (l *Log) AddGroupArgs(group int, kind Kind, label string, start, dur float64, args map[string]string) {
	l.Events = append(l.Events, Event{Kind: kind, Label: label, Start: start, Dur: dur, Group: group, Args: args})
}

// Len reports the event count.
func (l *Log) Len() int { return len(l.Events) }

// Annotate sets key=value in the Args of every event that does not already
// carry that key. The inference runtime uses it to stamp a per-layer log
// with the operator name, layer index and selected strategy before merging
// it onto the network timeline; existing keys win so inner annotations
// survive outer ones.
func (l *Log) Annotate(key, value string) {
	for i := range l.Events {
		ev := &l.Events[i]
		if _, ok := ev.Args[key]; ok {
			continue
		}
		if ev.Args == nil {
			ev.Args = map[string]string{}
		}
		ev.Args[key] = value
	}
}

// Merge appends shifted copies of the given logs' events into l: every
// event is moved by offset on the time axis, kinds, labels and durations
// untouched. Concatenating per-layer timelines into one network timeline is
// a sequence of merges, each layer at its start time on the network clock;
// a negative offset rebases an absolute timeline to its own origin. Because
// events are shifted rigidly, intra-layer structure — in particular the
// DMA/compute overlap double buffering creates — survives the merge.
func (l *Log) Merge(offset float64, others ...*Log) {
	for _, o := range others {
		if o == nil {
			continue
		}
		for _, ev := range o.Events {
			shifted := ev
			shifted.Start += offset
			l.Events = append(l.Events, shifted)
		}
	}
}

// MergeGroup merges like Merge but stamps every merged event with the
// given core-group index, overriding whatever group the source log
// carried. A fleet timeline is built by MergeGroup-ing each group's
// machine-local log at its fleet-clock offset: events from different
// groups then keep distinct rows in the Gantt and distinct process tracks
// in the Chrome export, while intra-group structure survives the rigid
// shift exactly as in Merge.
func (l *Log) MergeGroup(group int, offset float64, others ...*Log) {
	for _, o := range others {
		if o == nil {
			continue
		}
		for _, ev := range o.Events {
			shifted := ev
			shifted.Start += offset
			shifted.Group = group
			l.Events = append(l.Events, shifted)
		}
	}
}

// Groups returns the number of distinct core-group rows of the timeline:
// max event group + 1 (1 for an empty or single-machine log).
func (l *Log) Groups() int {
	maxG := 0
	for _, ev := range l.Events {
		if ev.Group > maxG {
			maxG = ev.Group
		}
	}
	return maxG + 1
}

// BusyTime returns the unioned busy time of one kind (overlapping events
// counted once).
func (l *Log) BusyTime(kind Kind) float64 {
	type span struct{ s, e float64 }
	var spans []span
	for _, ev := range l.Events {
		if ev.Kind == kind && ev.Dur > 0 {
			spans = append(spans, span{ev.Start, ev.Start + ev.Dur})
		}
	}
	if len(spans) == 0 {
		return 0
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].s < spans[j].s })
	total := 0.0
	cur := spans[0]
	for _, sp := range spans[1:] {
		if sp.s <= cur.e {
			if sp.e > cur.e {
				cur.e = sp.e
			}
			continue
		}
		total += cur.e - cur.s
		cur = sp
	}
	total += cur.e - cur.s
	return total
}

// Overlap returns the time during which both kinds were busy — the measure
// of how well prefetching hides memory latency.
func (l *Log) Overlap(a, b Kind) float64 {
	makeSpans := func(kind Kind) [][2]float64 {
		var out [][2]float64
		for _, ev := range l.Events {
			if ev.Kind == kind && ev.Dur > 0 {
				out = append(out, [2]float64{ev.Start, ev.Start + ev.Dur})
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
		return out
	}
	sa, sb := makeSpans(a), makeSpans(b)
	total := 0.0
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		lo := sa[i][0]
		if sb[j][0] > lo {
			lo = sb[j][0]
		}
		hi := sa[i][1]
		if sb[j][1] < hi {
			hi = sb[j][1]
		}
		if hi > lo {
			total += hi - lo
		}
		if sa[i][1] < sb[j][1] {
			i++
		} else {
			j++
		}
	}
	return total
}

// End returns the latest event end time.
func (l *Log) End() float64 {
	end := 0.0
	for _, ev := range l.Events {
		if t := ev.Start + ev.Dur; t > end {
			end = t
		}
	}
	return end
}

// Summary renders per-kind busy times and the compute/DMA overlap ratio.
func (l *Log) Summary() string {
	var b strings.Builder
	end := l.End()
	fmt.Fprintf(&b, "timeline: %d events over %.4g ms\n", len(l.Events), end*1e3)
	for _, k := range []Kind{KindGemm, KindTransform, KindDMA, KindWait} {
		busy := l.BusyTime(k)
		if busy == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-10s busy %.4g ms (%.0f%%)\n", k, busy*1e3, busy/end*100)
	}
	dma := l.BusyTime(KindDMA)
	if dma > 0 {
		ov := l.Overlap(KindGemm, KindDMA)
		fmt.Fprintf(&b, "  dma hidden behind compute: %.0f%%\n", ov/dma*100)
	}
	return b.String()
}

// ganttKinds is the row/precedence order of the text Gantt: later kinds
// draw over earlier ones in per-group rows, so compute ends up on top.
var ganttKinds = []Kind{KindWait, KindComm, KindDMA, KindTransform, KindGemm}

// Gantt renders a coarse text Gantt chart (width columns). A single-
// machine timeline gets one row per machine channel (gemm, transform,
// dma, wait); a fleet timeline (events on more than one group) gets one
// row per core group, each cell marked with the dominant channel active
// there (G > T > D > C > W in precedence).
func (l *Log) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	end := l.End()
	if end == 0 {
		return "(empty timeline)\n"
	}
	if l.Groups() > 1 {
		return l.ganttGroups(width, end)
	}
	var b strings.Builder
	for _, k := range []Kind{KindGemm, KindTransform, KindDMA, KindComm, KindWait} {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		mark := byte(strings.ToUpper(string(k))[0])
		drew := false
		for _, ev := range l.Events {
			if ev.Kind != k || ev.Dur <= 0 {
				// A zero-duration event at the timeline end would index one
				// past the row; instants carry no width anyway.
				continue
			}
			lo := int(ev.Start / end * float64(width))
			hi := int((ev.Start + ev.Dur) / end * float64(width))
			if lo >= width {
				lo = width - 1
			}
			if lo < 0 {
				lo = 0
			}
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi; i++ {
				row[i] = mark
			}
			drew = true
		}
		if (k == KindWait || k == KindComm) && !drew {
			continue // most schedules never stall; keep the chart compact
		}
		fmt.Fprintf(&b, "%-10s |%s|\n", k, row)
	}
	return b.String()
}

// ganttGroups renders the fleet view: one row per core group on the shared
// fleet clock, so data-parallel overlap and pipeline fill/drain bubbles are
// visible at a glance.
func (l *Log) ganttGroups(width int, end float64) string {
	var b strings.Builder
	for g := 0; g < l.Groups(); g++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, k := range ganttKinds {
			mark := byte(strings.ToUpper(string(k))[0])
			for _, ev := range l.Events {
				if ev.Group != g || ev.Kind != k || ev.Dur <= 0 {
					continue
				}
				lo := int(ev.Start / end * float64(width))
				hi := int((ev.Start + ev.Dur) / end * float64(width))
				if lo >= width {
					lo = width - 1
				}
				if lo < 0 {
					lo = 0
				}
				if hi >= width {
					hi = width - 1
				}
				for i := lo; i <= hi; i++ {
					row[i] = mark
				}
			}
		}
		fmt.Fprintf(&b, "%-10s |%s|\n", fmt.Sprintf("group%d", g), row)
	}
	b.WriteString(l.commLegend())
	return b.String()
}

// commLegend lists the comm events under the fleet rows with their
// source→destination groups, so concurrent collectives in the same window
// stay distinguishable. Events sharing a label and start time (a collective
// stamped on every participating group) collapse to one line with the
// union of their sources.
func (l *Log) commLegend() string {
	type entry struct {
		label      string
		start, dur float64
		srcs       []string
		dst        string
	}
	var order []*entry
	index := map[string]*entry{}
	for _, ev := range l.Events {
		if ev.Kind != KindComm {
			continue
		}
		key := fmt.Sprintf("%s@%.9g", ev.Label, ev.Start)
		en := index[key]
		if en == nil {
			en = &entry{label: ev.Label, start: ev.Start, dur: ev.Dur, dst: ev.Args["dst"]}
			index[key] = en
			order = append(order, en)
		}
		src := ev.Args["src"]
		if src == "" {
			src = fmt.Sprintf("group%d", ev.Group)
		}
		dup := false
		for _, s := range en.srcs {
			if s == src {
				dup = true
				break
			}
		}
		if !dup {
			en.srcs = append(en.srcs, src)
		}
	}
	if len(order) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("comm:\n")
	for _, en := range order {
		sort.Strings(en.srcs)
		dst := en.dst
		if dst == "" {
			dst = "?"
		}
		fmt.Fprintf(&b, "  %-24s %s -> %s  @%.4g+%.4g ms\n",
			en.label, strings.Join(en.srcs, ","), dst, en.start*1e3, en.dur*1e3)
	}
	return b.String()
}
