package trace_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"swatop/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the Chrome-trace golden file")

// goldenLog is a small hand-built timeline exercising every export path:
// all four machine channels, an unknown kind (extra track), a zero-duration
// instant, an unlabeled event, and span Args.
func goldenLog() *trace.Log {
	l := &trace.Log{}
	l.Add(trace.KindGemm, "128x128x128", 0, 0.0012)
	l.Add(trace.KindDMA, "get in", 0.0002, 0.0006)
	l.Add(trace.KindTransform, "wino input", 0.0013, 0.0001)
	l.Add(trace.KindWait, "rep", 0.0014, 0.0003)
	l.Add(trace.Kind("experiment"), "table3", 0, 0.0017)
	l.Add(trace.KindDMA, "", 0.0017, 0) // instant, unlabeled
	l.Annotate("op", "conv1_1")
	l.Annotate("layer", "0")
	return l
}

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenLog().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestChromeTraceIsValidAndComplete parses the export back as generic JSON
// and checks the structural invariants any trace viewer relies on.
func TestChromeTraceIsValidAndComplete(t *testing.T) {
	l := goldenLog()
	var buf bytes.Buffer
	if err := l.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Cat  string         `json:"cat"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var spans, metas int
	threadNames := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.TS < 0 || ev.Dur < 0 {
				t.Fatalf("negative ts/dur: %+v", ev)
			}
			if ev.Name == "" {
				t.Fatalf("span without a name: %+v", ev)
			}
		case "M":
			metas++
			if ev.Name == "thread_name" {
				threadNames[ev.Args["name"].(string)] = true
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if spans != l.Len() {
		t.Fatalf("%d spans exported, want %d", spans, l.Len())
	}
	for _, name := range []string{"gemm", "dma", "transform", "wait", "experiment"} {
		if !threadNames[name] {
			t.Fatalf("missing thread_name for %q (have %v)", name, threadNames)
		}
	}
	// A gemm span's timestamps are microseconds.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Cat == "gemm" {
			if ev.TS != 0 || ev.Dur != 1200 {
				t.Fatalf("gemm span ts=%g dur=%g, want 0/1200 µs", ev.TS, ev.Dur)
			}
			if ev.Args["op"] != "conv1_1" || ev.Args["layer"] != "0" {
				t.Fatalf("span args lost: %+v", ev.Args)
			}
		}
	}
}

// TestWriteChromeTraceFleetGolden pins the multi-group export: each core
// group becomes its own numbered process, spans keep their Args, and the
// output is deterministic byte-for-byte.
func TestWriteChromeTraceFleetGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fleetLog().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome_fleet_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("fleet chrome trace drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// Structural invariants a viewer relies on: valid JSON, one process per
	// group with distinct numbered names, spans on the right pids.
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Cat  string         `json:"cat"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("fleet export is not valid JSON: %v", err)
	}
	procNames := map[int]string{}
	spanPIDs := map[int]int{}
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			procNames[ev.PID] = ev.Args["name"].(string)
		case ev.Ph == "X":
			spanPIDs[ev.PID]++
			if ev.Cat == "gemm" && ev.Args["op"] != "conv1" {
				t.Fatalf("fleet span lost Args: %+v", ev)
			}
		}
	}
	if procNames[1] == procNames[2] || procNames[1] == "" || procNames[2] == "" {
		t.Fatalf("group processes not distinct: %v", procNames)
	}
	if spanPIDs[1] != 3 || spanPIDs[2] != 2 {
		t.Fatalf("spans per pid = %v, want 3 on pid 1, 2 on pid 2", spanPIDs)
	}
}

func TestRoofline(t *testing.T) {
	l := &trace.Log{}
	l.Add(trace.KindGemm, "", 0, 4)
	l.Add(trace.KindDMA, "", 2, 4) // 2 s hidden, 2 s exposed
	r := l.Roofline(6e9, 12e9, 1.0, 4e9)
	if r.Seconds != 6 {
		t.Fatalf("seconds = %g", r.Seconds)
	}
	if r.AchievedGFLOPS != 1 || r.ComputeUtilization() != 1 {
		t.Fatalf("gflops = %g util %g", r.AchievedGFLOPS, r.ComputeUtilization())
	}
	if r.DMAGBps != 2 || r.DMAUtilization() != 0.5 {
		t.Fatalf("dma %g GB/s util %g", r.DMAGBps, r.DMAUtilization())
	}
	if r.HiddenDMAFraction() != 0.5 {
		t.Fatalf("hidden fraction = %g, want 0.5", r.HiddenDMAFraction())
	}
	s := r.String()
	for _, want := range []string{"roofline", "compute", "dma", "hidden behind compute"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("roofline summary missing %q:\n%s", want, s)
		}
	}
	empty := (&trace.Log{}).Roofline(0, 0, 1, 1)
	if empty.AchievedGFLOPS != 0 || empty.ComputeUtilization() != 0 || empty.HiddenDMAFraction() != 0 {
		t.Fatal("empty roofline must be all zeros")
	}
}
