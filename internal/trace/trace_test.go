package trace_test

import (
	"strings"
	"testing"

	"swatop/internal/core"
	"swatop/internal/dsl"
	"swatop/internal/exec"
	"swatop/internal/gemm"
	"swatop/internal/ir"
	"swatop/internal/trace"
)

func TestBusyTimeUnionsOverlaps(t *testing.T) {
	var l trace.Log
	l.Add(trace.KindGemm, "a", 0, 2)
	l.Add(trace.KindGemm, "b", 1, 2) // overlaps [1,2]
	l.Add(trace.KindGemm, "c", 5, 1) // disjoint
	if got := l.BusyTime(trace.KindGemm); got != 4 {
		t.Fatalf("busy = %g, want 4", got)
	}
	if l.BusyTime(trace.KindDMA) != 0 {
		t.Fatal("empty kind should be zero")
	}
}

func TestOverlap(t *testing.T) {
	var l trace.Log
	l.Add(trace.KindGemm, "", 0, 4)
	l.Add(trace.KindDMA, "", 2, 4)
	if got := l.Overlap(trace.KindGemm, trace.KindDMA); got != 2 {
		t.Fatalf("overlap = %g, want 2", got)
	}
	l2 := trace.Log{}
	l2.Add(trace.KindGemm, "", 0, 1)
	l2.Add(trace.KindDMA, "", 2, 1)
	if l2.Overlap(trace.KindGemm, trace.KindDMA) != 0 {
		t.Fatal("disjoint spans must not overlap")
	}
}

func TestEndAndSummary(t *testing.T) {
	var l trace.Log
	l.Add(trace.KindGemm, "", 0, 1)
	l.Add(trace.KindDMA, "", 0.5, 2)
	if l.End() != 2.5 {
		t.Fatalf("End = %g", l.End())
	}
	sum := l.Summary()
	for _, want := range []string{"gemm", "dma", "hidden behind compute"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	gantt := l.Gantt(40)
	if !strings.Contains(gantt, "G") || !strings.Contains(gantt, "D") {
		t.Fatalf("gantt missing marks:\n%s", gantt)
	}
	empty := (&trace.Log{}).Gantt(40)
	if !strings.Contains(empty, "empty") {
		t.Fatal("empty gantt should say so")
	}
}

// TestTraceOfRealRun: a double-buffered GEMM should show substantial DMA
// time hidden behind compute.
func TestTraceOfRealRun(t *testing.T) {
	seed, err := gemm.Seed(gemm.Params{M: 512, N: 512, K: 512})
	if err != nil {
		t.Fatal(err)
	}
	st := dsl.Strategy{
		Factors:      map[string]int{"m": 128, "n": 128, "k": 128},
		Order:        []string{"m", "n", "k"},
		Layouts:      map[string][]int{"C": {1, 0}},
		Vec:          ir.VecM,
		DoubleBuffer: true,
	}
	prog, err := core.Compile(seed, st)
	if err != nil {
		t.Fatal(err)
	}
	binds, err := exec.BindVirtual(prog)
	if err != nil {
		t.Fatal(err)
	}
	var log trace.Log
	res, err := exec.Run(prog, binds, exec.Options{Trace: &log})
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() == 0 {
		t.Fatal("no events recorded")
	}
	gemmBusy := log.BusyTime(trace.KindGemm)
	dmaBusy := log.BusyTime(trace.KindDMA)
	if gemmBusy <= 0 || dmaBusy <= 0 {
		t.Fatalf("busy times: gemm %g dma %g", gemmBusy, dmaBusy)
	}
	if gemmBusy > res.Seconds || dmaBusy > res.Seconds*1.01 {
		t.Fatalf("busy times exceed run time: gemm %g dma %g total %g", gemmBusy, dmaBusy, res.Seconds)
	}
	// The whole point of prefetching: most DMA time hides behind compute.
	ov := log.Overlap(trace.KindGemm, trace.KindDMA)
	if ov < 0.5*dmaBusy {
		t.Fatalf("only %.0f%% of DMA hidden behind compute — prefetching broken?", ov/dmaBusy*100)
	}
}
