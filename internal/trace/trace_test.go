package trace_test

import (
	"strings"
	"testing"

	"swatop/internal/core"
	"swatop/internal/dsl"
	"swatop/internal/exec"
	"swatop/internal/gemm"
	"swatop/internal/ir"
	"swatop/internal/trace"
)

func TestBusyTimeUnionsOverlaps(t *testing.T) {
	var l trace.Log
	l.Add(trace.KindGemm, "a", 0, 2)
	l.Add(trace.KindGemm, "b", 1, 2) // overlaps [1,2]
	l.Add(trace.KindGemm, "c", 5, 1) // disjoint
	if got := l.BusyTime(trace.KindGemm); got != 4 {
		t.Fatalf("busy = %g, want 4", got)
	}
	if l.BusyTime(trace.KindDMA) != 0 {
		t.Fatal("empty kind should be zero")
	}
}

func TestOverlap(t *testing.T) {
	var l trace.Log
	l.Add(trace.KindGemm, "", 0, 4)
	l.Add(trace.KindDMA, "", 2, 4)
	if got := l.Overlap(trace.KindGemm, trace.KindDMA); got != 2 {
		t.Fatalf("overlap = %g, want 2", got)
	}
	l2 := trace.Log{}
	l2.Add(trace.KindGemm, "", 0, 1)
	l2.Add(trace.KindDMA, "", 2, 1)
	if l2.Overlap(trace.KindGemm, trace.KindDMA) != 0 {
		t.Fatal("disjoint spans must not overlap")
	}
}

func TestEndAndSummary(t *testing.T) {
	var l trace.Log
	l.Add(trace.KindGemm, "", 0, 1)
	l.Add(trace.KindDMA, "", 0.5, 2)
	if l.End() != 2.5 {
		t.Fatalf("End = %g", l.End())
	}
	sum := l.Summary()
	for _, want := range []string{"gemm", "dma", "hidden behind compute"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	gantt := l.Gantt(40)
	if !strings.Contains(gantt, "G") || !strings.Contains(gantt, "D") {
		t.Fatalf("gantt missing marks:\n%s", gantt)
	}
	empty := (&trace.Log{}).Gantt(40)
	if !strings.Contains(empty, "empty") {
		t.Fatal("empty gantt should say so")
	}
}

// TestMergeTwoLayerGolden is the golden concatenation case: two per-layer
// timelines, each recorded from its own time zero with DMA prefetching
// partially hidden behind compute, merged back-to-back into one network
// timeline. The merged log must preserve every intra-layer relation — busy
// times, the DMA/compute overlap, and the layer boundaries.
func TestMergeTwoLayerGolden(t *testing.T) {
	// Layer 1: compute [0,3], DMA [1,4] → 2 s of DMA hidden.
	l1 := &trace.Log{}
	l1.Add(trace.KindGemm, "conv1", 0, 3)
	l1.Add(trace.KindDMA, "get in", 1, 3)
	// Layer 2: compute [0,2], DMA [0.5,1.5] → 1 s of DMA hidden.
	l2 := &trace.Log{}
	l2.Add(trace.KindGemm, "conv2", 0, 2)
	l2.Add(trace.KindDMA, "get in", 0.5, 1)

	net := &trace.Log{}
	net.Merge(0, l1)
	net.Merge(l1.End(), l2) // layer 2 starts where layer 1 ended
	if got := net.Len(); got != 4 {
		t.Fatalf("merged %d events, want 4", got)
	}
	if got, want := net.End(), l1.End()+l2.End(); got != want {
		t.Fatalf("End = %g, want %g", got, want)
	}
	if got, want := net.BusyTime(trace.KindGemm), 5.0; got != want {
		t.Fatalf("gemm busy = %g, want %g", got, want)
	}
	if got, want := net.BusyTime(trace.KindDMA), 4.0; got != want {
		t.Fatalf("dma busy = %g, want %g", got, want)
	}
	// The per-layer overlaps must survive: 2 s (layer 1) + 1 s (layer 2).
	if got, want := net.Overlap(trace.KindGemm, trace.KindDMA), 3.0; got != want {
		t.Fatalf("overlap = %g, want %g — merge destroyed the DMA/compute structure", got, want)
	}
	// Layer 2's first event must sit exactly at the layer boundary.
	if got := net.Events[2].Start; got != 4 {
		t.Fatalf("layer 2 compute starts at %g, want 4", got)
	}

	// Rebasing with a negative offset inverts the concatenation.
	back := &trace.Log{}
	back.Merge(-l1.End(), &trace.Log{Events: net.Events[2:]})
	if got := back.Overlap(trace.KindGemm, trace.KindDMA); got != 1 {
		t.Fatalf("rebased overlap = %g, want 1", got)
	}
	if back.Events[0].Start != 0 {
		t.Fatalf("rebased start = %g, want 0", back.Events[0].Start)
	}

	// Merging a nil log is a no-op, not a panic.
	net.Merge(0, nil)
	if net.Len() != 4 {
		t.Fatal("nil merge changed the log")
	}
}

// TestMergeNegativeOffset: merging with a negative offset shifts events
// left, and a chain of negative merges composes like vector addition.
func TestMergeNegativeOffset(t *testing.T) {
	abs := &trace.Log{}
	abs.Add(trace.KindGemm, "g", 10, 2)
	abs.Add(trace.KindDMA, "d", 11, 2)
	abs.Annotate("op", "conv3_1")

	rel := &trace.Log{}
	rel.Merge(-10, abs)
	if rel.Events[0].Start != 0 || rel.Events[1].Start != 1 {
		t.Fatalf("rebase: starts %g, %g; want 0, 1", rel.Events[0].Start, rel.Events[1].Start)
	}
	if got, want := rel.Overlap(trace.KindGemm, trace.KindDMA), abs.Overlap(trace.KindGemm, trace.KindDMA); got != want {
		t.Fatalf("rebased overlap = %g, want %g", got, want)
	}
	if rel.Events[0].Args["op"] != "conv3_1" {
		t.Fatal("merge dropped event Args")
	}

	// Shifting further negative pushes starts below zero but keeps durations.
	neg := &trace.Log{}
	neg.Merge(-5, rel)
	if neg.Events[0].Start != -5 || neg.Events[0].Dur != 2 {
		t.Fatalf("negative start = %g dur %g", neg.Events[0].Start, neg.Events[0].Dur)
	}
	if got := neg.BusyTime(trace.KindGemm); got != 2 {
		t.Fatalf("busy with negative starts = %g, want 2", got)
	}
}

// TestTouchingSpansBoundary pins the half-open interval semantics: spans
// that touch (sp.s == cur.e) coalesce for BusyTime but contribute zero
// Overlap — touching is not overlapping.
func TestTouchingSpansBoundary(t *testing.T) {
	var l trace.Log
	l.Add(trace.KindGemm, "a", 0, 2)
	l.Add(trace.KindGemm, "b", 2, 3) // starts exactly where a ends
	if got := l.BusyTime(trace.KindGemm); got != 5 {
		t.Fatalf("touching spans busy = %g, want 5 (must coalesce, not double-count)", got)
	}

	var o trace.Log
	o.Add(trace.KindGemm, "", 0, 2)
	o.Add(trace.KindDMA, "", 2, 2) // dma starts the instant compute ends
	if got := o.Overlap(trace.KindGemm, trace.KindDMA); got != 0 {
		t.Fatalf("touching spans overlap = %g, want 0", got)
	}
	// Shared endpoint in the middle: gemm [0,2] and [2,4] vs dma [1,3] —
	// the boundary point at t=2 must not be counted twice.
	var p trace.Log
	p.Add(trace.KindGemm, "", 0, 2)
	p.Add(trace.KindGemm, "", 2, 2)
	p.Add(trace.KindDMA, "", 1, 2)
	if got := p.Overlap(trace.KindGemm, trace.KindDMA); got != 2 {
		t.Fatalf("overlap = %g, want 2", got)
	}
}

// TestGanttZeroDurationAtEnd is the regression test for the out-of-range
// panic: a zero-duration event whose Start equals the timeline end used to
// compute lo == width and index past the row buffer.
func TestGanttZeroDurationAtEnd(t *testing.T) {
	var l trace.Log
	l.Add(trace.KindGemm, "", 0, 2)
	l.Add(trace.KindDMA, "done", 2, 0) // instant at the exact timeline end
	got := l.Gantt(40)
	if !strings.Contains(got, "G") {
		t.Fatalf("gantt lost the compute row:\n%s", got)
	}
	if strings.Contains(got, "wait") {
		t.Fatalf("wait row should be omitted when nothing stalled:\n%s", got)
	}
	// With a stall recorded, the wait row appears.
	l.Add(trace.KindWait, "rep", 1, 0.5)
	got = l.Gantt(40)
	if !strings.Contains(got, "wait") || !strings.Contains(got, "W") {
		t.Fatalf("gantt missing wait row:\n%s", got)
	}
}

// TestAnnotate: existing keys win, nil maps are created lazily.
func TestAnnotate(t *testing.T) {
	var l trace.Log
	l.Add(trace.KindGemm, "", 0, 1)
	l.Events[0].Args = map[string]string{"op": "inner"}
	l.Add(trace.KindDMA, "", 0, 1)
	l.Annotate("op", "outer")
	l.Annotate("layer", "3")
	if l.Events[0].Args["op"] != "inner" {
		t.Fatal("Annotate must not overwrite existing keys")
	}
	if l.Events[1].Args["op"] != "outer" || l.Events[0].Args["layer"] != "3" {
		t.Fatalf("Annotate missed events: %+v", l.Events)
	}
}

// fleetLog builds a two-group timeline with deliberately overlapping
// intervals: both groups compute over [0,3] on the shared fleet clock, with
// per-group DMA and a gather at the end.
func fleetLog() *trace.Log {
	g0 := &trace.Log{}
	g0.Add(trace.KindGemm, "conv1 shard0", 0, 3)
	g0.Add(trace.KindDMA, "get in", 1, 1)
	g0.Annotate("op", "conv1")
	g0.Annotate("group", "0")
	g1 := &trace.Log{}
	g1.Add(trace.KindGemm, "conv1 shard1", 0, 3)
	g1.Add(trace.KindDMA, "get in", 0.5, 1)
	g1.Annotate("op", "conv1")
	g1.Annotate("group", "1")

	net := &trace.Log{}
	net.MergeGroup(0, 0, g0)
	net.MergeGroup(1, 0, g1)
	net.AddGroup(0, trace.KindComm, "gather", 3, 0.5)
	return net
}

// TestMergeGroupOverlappingTimelines is the satellite coverage for fleet
// merges: two groups with overlapping [0,3] intervals must keep distinct
// group rows, keep their Args, and render one Gantt row per group.
func TestMergeGroupOverlappingTimelines(t *testing.T) {
	net := fleetLog()
	if got := net.Groups(); got != 2 {
		t.Fatalf("Groups = %d, want 2", got)
	}
	if got := net.Len(); got != 5 {
		t.Fatalf("merged %d events, want 5", got)
	}
	// Overlapping intervals stay distinct per group: both compute spans
	// survive with their own group stamp and Args.
	perGroup := map[int]int{}
	for _, ev := range net.Events {
		perGroup[ev.Group]++
		if ev.Kind == trace.KindGemm {
			if ev.Args["op"] != "conv1" {
				t.Fatalf("MergeGroup dropped Args: %+v", ev)
			}
			if ev.Args["group"] != map[int]string{0: "0", 1: "1"}[ev.Group] {
				t.Fatalf("event landed on the wrong group row: %+v", ev)
			}
		}
	}
	if perGroup[0] != 3 || perGroup[1] != 2 {
		t.Fatalf("events per group = %v, want 3/2", perGroup)
	}
	// MergeGroup overrides whatever group the source carried.
	src := &trace.Log{}
	src.AddGroup(7, trace.KindGemm, "x", 0, 1)
	dst := &trace.Log{}
	dst.MergeGroup(2, 1.5, src)
	if dst.Events[0].Group != 2 || dst.Events[0].Start != 1.5 {
		t.Fatalf("MergeGroup restamp wrong: %+v", dst.Events[0])
	}
	dst.MergeGroup(0, 0, nil) // nil is a no-op
	if dst.Len() != 1 {
		t.Fatal("nil merge changed the log")
	}

	// BusyTime unions across groups: both groups computing [0,3] is still
	// 3 s of wall-clock compute on the fleet timeline.
	if got := net.BusyTime(trace.KindGemm); got != 3 {
		t.Fatalf("fleet gemm busy = %g, want 3", got)
	}

	// The Gantt renders one row per group, not per kind.
	gantt := net.Gantt(40)
	for _, want := range []string{"group0", "group1", "G", "C"} {
		if !strings.Contains(gantt, want) {
			t.Fatalf("fleet gantt missing %q:\n%s", want, gantt)
		}
	}
	if strings.Contains(gantt, "gemm") {
		t.Fatalf("fleet gantt still has per-kind rows:\n%s", gantt)
	}
	// A single-group log keeps the per-kind layout.
	single := &trace.Log{}
	single.Add(trace.KindGemm, "", 0, 1)
	if got := single.Gantt(40); !strings.Contains(got, "gemm") {
		t.Fatalf("single-group gantt lost per-kind rows:\n%s", got)
	}
}

// TestTraceOfRealRun: a double-buffered GEMM should show substantial DMA
// time hidden behind compute.
func TestTraceOfRealRun(t *testing.T) {
	seed, err := gemm.Seed(gemm.Params{M: 512, N: 512, K: 512})
	if err != nil {
		t.Fatal(err)
	}
	st := dsl.Strategy{
		Factors:      map[string]int{"m": 128, "n": 128, "k": 128},
		Order:        []string{"m", "n", "k"},
		Layouts:      map[string][]int{"C": {1, 0}},
		Vec:          ir.VecM,
		DoubleBuffer: true,
	}
	prog, err := core.Compile(seed, st)
	if err != nil {
		t.Fatal(err)
	}
	binds, err := exec.BindVirtual(prog)
	if err != nil {
		t.Fatal(err)
	}
	var log trace.Log
	res, err := exec.Run(prog, binds, exec.Options{Trace: &log})
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() == 0 {
		t.Fatal("no events recorded")
	}
	gemmBusy := log.BusyTime(trace.KindGemm)
	dmaBusy := log.BusyTime(trace.KindDMA)
	if gemmBusy <= 0 || dmaBusy <= 0 {
		t.Fatalf("busy times: gemm %g dma %g", gemmBusy, dmaBusy)
	}
	if gemmBusy > res.Seconds || dmaBusy > res.Seconds*1.01 {
		t.Fatalf("busy times exceed run time: gemm %g dma %g total %g", gemmBusy, dmaBusy, res.Seconds)
	}
	// The whole point of prefetching: most DMA time hides behind compute.
	ov := log.Overlap(trace.KindGemm, trace.KindDMA)
	if ov < 0.5*dmaBusy {
		t.Fatalf("only %.0f%% of DMA hidden behind compute — prefetching broken?", ov/dmaBusy*100)
	}
}
