package ir

// Walk visits every statement in pre-order. The visitor returns false to
// skip a node's children.
func Walk(body []Stmt, visit func(Stmt) bool) {
	for _, s := range body {
		if !visit(s) {
			continue
		}
		switch x := s.(type) {
		case *For:
			Walk(x.Body, visit)
		case *If:
			Walk(x.Then, visit)
			Walk(x.Else, visit)
		}
	}
}

// Rewrite maps every statement bottom-up through fn; fn may return a
// replacement list (nil keeps the statement, an empty non-nil slice deletes
// it). Children are rewritten before their parents see them.
func Rewrite(body []Stmt, fn func(Stmt) []Stmt) []Stmt {
	out := make([]Stmt, 0, len(body))
	for _, s := range body {
		switch x := s.(type) {
		case *For:
			x.Body = Rewrite(x.Body, fn)
		case *If:
			x.Then = Rewrite(x.Then, fn)
			x.Else = Rewrite(x.Else, fn)
		}
		if repl := fn(s); repl != nil {
			out = append(out, repl...)
		} else {
			out = append(out, s)
		}
	}
	return out
}

// CountKind counts statements matching the predicate anywhere in the tree.
func CountKind(body []Stmt, pred func(Stmt) bool) int {
	n := 0
	Walk(body, func(s Stmt) bool {
		if pred(s) {
			n++
		}
		return true
	})
	return n
}

// LoopNest returns the chain of For statements from the root down while the
// body stays a single nested loop (the canonical perfectly-nested prefix).
func LoopNest(body []Stmt) []*For {
	var nest []*For
	cur := body
	for {
		var f *For
		for _, s := range cur {
			if ff, ok := s.(*For); ok {
				if f != nil {
					return nest // multiple loops at this level: stop
				}
				f = ff
			}
		}
		if f == nil {
			return nest
		}
		nest = append(nest, f)
		cur = f.Body
	}
}

// FindLoop locates the first loop with the given iterator name.
func FindLoop(body []Stmt, iter string) *For {
	var found *For
	Walk(body, func(s Stmt) bool {
		if found != nil {
			return false
		}
		if f, ok := s.(*For); ok && f.Iter == iter {
			found = f
			return false
		}
		return true
	})
	return found
}
