// Package ir defines swATOP's intermediate representation (§4.4): an
// abstract syntax tree of statement nodes (for, if-then-else, DMA, gemm_op,
// transforms) over a small integer expression language of loop iterators.
// Schedule strategies and IR optimizations are implemented as mutations of
// this structure; the executor interprets it against the SW26010 model and
// the code generator lowers it to C.
package ir

import (
	"fmt"
	"sort"
)

// Env maps loop iterators and scalar locals to values during evaluation.
type Env map[string]int64

// Expr is an integer expression over loop variables. All loop bounds, DMA
// attributes and buffer offsets in the IR are Exprs; the paper's observation
// that data access of DL operators is a function of the enclosing loop
// variables (§4.5.2) is what makes prefetch inference work.
type Expr interface {
	// Eval computes the expression under an environment. It panics on an
	// unbound variable — that is a compiler bug, not a user error.
	Eval(env Env) int64
	// String renders the expression as C-like source.
	String() string
	// free accumulates free variables.
	free(set map[string]bool)
}

// ConstExpr is an integer literal.
type ConstExpr int64

// Const builds a literal expression.
func Const(v int64) Expr { return ConstExpr(v) }

// Eval implements Expr.
func (c ConstExpr) Eval(Env) int64       { return int64(c) }
func (c ConstExpr) String() string       { return fmt.Sprintf("%d", int64(c)) }
func (c ConstExpr) free(map[string]bool) {}

// VarExpr references a loop iterator or scalar local.
type VarExpr string

// V builds a variable reference.
func V(name string) Expr { return VarExpr(name) }

// Eval implements Expr.
func (v VarExpr) Eval(env Env) int64 {
	val, ok := env[string(v)]
	if !ok {
		panic(fmt.Sprintf("ir: unbound variable %q", string(v)))
	}
	return val
}
func (v VarExpr) String() string           { return string(v) }
func (v VarExpr) free(set map[string]bool) { set[string(v)] = true }

type binOp int

const (
	opAdd binOp = iota
	opSub
	opMul
	opDiv // floor division
	opMod
	opMin
	opMax
)

var opNames = map[binOp]string{
	opAdd: "+", opSub: "-", opMul: "*", opDiv: "/", opMod: "%%",
}

// BinExpr is a binary operation.
type BinExpr struct {
	Op   binOp
	L, R Expr
}

// Eval implements Expr.
func (b *BinExpr) Eval(env Env) int64 {
	l, r := b.L.Eval(env), b.R.Eval(env)
	switch b.Op {
	case opAdd:
		return l + r
	case opSub:
		return l - r
	case opMul:
		return l * r
	case opDiv:
		if r == 0 {
			panic("ir: division by zero")
		}
		q := l / r
		if (l%r != 0) && ((l < 0) != (r < 0)) {
			q-- // floor semantics
		}
		return q
	case opMod:
		if r == 0 {
			panic("ir: modulo by zero")
		}
		m := l % r
		if m != 0 && ((l < 0) != (r < 0)) {
			m += r
		}
		return m
	case opMin:
		if l < r {
			return l
		}
		return r
	case opMax:
		if l > r {
			return l
		}
		return r
	}
	panic("ir: unknown op")
}

func (b *BinExpr) String() string {
	switch b.Op {
	case opMin:
		return fmt.Sprintf("min(%s, %s)", b.L, b.R)
	case opMax:
		return fmt.Sprintf("max(%s, %s)", b.L, b.R)
	case opMod:
		return fmt.Sprintf("(%s %% %s)", b.L, b.R)
	default:
		return fmt.Sprintf("(%s %s %s)", b.L, opNames[b.Op], b.R)
	}
}

func (b *BinExpr) free(set map[string]bool) {
	b.L.free(set)
	b.R.free(set)
}

func newBin(op binOp, l, r Expr) Expr {
	// Light constant folding keeps printed IR and generated C readable.
	lc, lok := l.(ConstExpr)
	rc, rok := r.(ConstExpr)
	if lok && rok {
		return Const((&BinExpr{op, l, r}).Eval(nil))
	}
	switch op {
	case opAdd:
		if lok && lc == 0 {
			return r
		}
		if rok && rc == 0 {
			return l
		}
	case opSub:
		if rok && rc == 0 {
			return l
		}
	case opMul:
		if lok && lc == 1 {
			return r
		}
		if rok && rc == 1 {
			return l
		}
		if (lok && lc == 0) || (rok && rc == 0) {
			return Const(0)
		}
	case opDiv:
		if rok && rc == 1 {
			return l
		}
	}
	return &BinExpr{op, l, r}
}

// Add returns l + r with constant folding.
func Add(l, r Expr) Expr { return newBin(opAdd, l, r) }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return newBin(opSub, l, r) }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return newBin(opMul, l, r) }

// Div returns floor(l / r).
func Div(l, r Expr) Expr { return newBin(opDiv, l, r) }

// Mod returns l mod r (non-negative for positive r).
func Mod(l, r Expr) Expr { return newBin(opMod, l, r) }

// Min returns min(l, r) — the boundary-extent idiom min(factor, N - i*factor).
func Min(l, r Expr) Expr { return newBin(opMin, l, r) }

// Max returns max(l, r).
func Max(l, r Expr) Expr { return newBin(opMax, l, r) }

// AddN sums a list of expressions.
func AddN(xs ...Expr) Expr {
	acc := Expr(Const(0))
	for _, x := range xs {
		acc = Add(acc, x)
	}
	return acc
}

// FreeVars returns the sorted free variables of an expression.
func FreeVars(e Expr) []string {
	set := make(map[string]bool)
	e.free(set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// IsConst reports whether e evaluates without an environment, returning the
// value when it does.
func IsConst(e Expr) (int64, bool) {
	if c, ok := e.(ConstExpr); ok {
		return int64(c), true
	}
	set := make(map[string]bool)
	e.free(set)
	if len(set) == 0 {
		return e.Eval(nil), true
	}
	return 0, false
}

// Subst replaces variable references by expressions, returning a new tree.
func Subst(e Expr, repl map[string]Expr) Expr {
	switch x := e.(type) {
	case ConstExpr:
		return x
	case VarExpr:
		if r, ok := repl[string(x)]; ok {
			return r
		}
		return x
	case *BinExpr:
		return newBin(x.Op, Subst(x.L, repl), Subst(x.R, repl))
	}
	panic(fmt.Sprintf("ir: Subst on unknown expr %T", e))
}

// CmpOp is a comparison operator for If conditions.
type CmpOp int

// Comparison operators.
const (
	LT CmpOp = iota
	LE
	GT
	GE
	EQ
	NE
)

var cmpNames = map[CmpOp]string{LT: "<", LE: "<=", GT: ">", GE: ">=", EQ: "==", NE: "!="}

// Cond is a binary comparison used by If statements.
type Cond struct {
	Op   CmpOp
	L, R Expr
}

// Eval evaluates the condition.
func (c Cond) Eval(env Env) bool {
	l, r := c.L.Eval(env), c.R.Eval(env)
	switch c.Op {
	case LT:
		return l < r
	case LE:
		return l <= r
	case GT:
		return l > r
	case GE:
		return l >= r
	case EQ:
		return l == r
	case NE:
		return l != r
	}
	panic("ir: unknown cmp op")
}

func (c Cond) String() string {
	return fmt.Sprintf("%s %s %s", c.L, cmpNames[c.Op], c.R)
}
