package ir

import "fmt"

// Stmt is a statement node of the IR AST.
type Stmt interface{ isStmt() }

// Program is a complete operator implementation: the statement list plus
// the declarations the executor and code generator need.
type Program struct {
	Name string
	// Tensors declares the main-memory operands by name; the executor
	// binds them to concrete tensors at run time.
	Tensors []TensorDecl
	// Body is the statement list.
	Body []Stmt
	// DispatchOverheadSeconds is fixed per-invocation cost outside the
	// statement list: library-call dispatch (athread spawn, workspace
	// setup) of hand-written routines. swATOP-generated operators compile
	// to one fused kernel and carry none.
	DispatchOverheadSeconds float64
}

// TensorDecl declares a main-memory tensor operand.
type TensorDecl struct {
	Name string
	Dims []int
	// Output marks tensors the operator writes (cleared before runs when
	// accumulation starts from zero).
	Output bool
	// Scratch marks main-memory workspace tensors the executor allocates
	// itself (im2col matrices, Winograd planes, padded copies).
	Scratch bool
	// Layout is the storage permutation (slowest→fastest); nil is
	// row-major. For non-scratch tensors the executor validates that the
	// bound tensor matches.
	Layout []int
}

// For is a counted loop: Iter ranges over [0, Extent).
type For struct {
	Iter   string
	Extent Expr
	Body   []Stmt
}

// If is a two-armed conditional.
type If struct {
	Cond Cond
	Then []Stmt
	Else []Stmt
}

// Assign introduces or updates a scalar local (used by prefetch index
// inference: next_i = ...).
type Assign struct {
	Var string
	Val Expr
}

// AllocSPM reserves a core-group-level SPM buffer of Elems float32 values
// for the remainder of the program (the code generator coalesces all
// allocations into one region).
type AllocSPM struct {
	Buf   string
	Elems Expr
}

// FreeSPM releases a buffer.
type FreeSPM struct {
	Buf string
}

// MoveDir is the direction/semantics of a data movement.
type MoveDir int

// Movement directions.
const (
	// Get copies main memory → SPM.
	Get MoveDir = iota
	// Put copies SPM → main memory.
	Put
	// PutAcc accumulates SPM into main memory (used when a reduction loop
	// is split across DMA round trips).
	PutAcc
)

func (d MoveDir) String() string {
	switch d {
	case Get:
		return "get"
	case Put:
		return "put"
	case PutAcc:
		return "put+"
	}
	return "?"
}

// RegionMove is the *abstract* data-movement node the lowering emits: move a
// hyper-rectangular region of a main-memory tensor into/out of an SPM
// buffer. Users never write DMA in the DSL (§4.5.1); the DMA-inference pass
// turns RegionMoves into concrete DMAOp/DMAWait pairs.
type RegionMove struct {
	Tensor string // main-memory tensor name
	Dir    MoveDir
	Start  []Expr // per-dimension region start
	Extent []Expr // per-dimension region extent
	Buf    string // SPM buffer
	BufOff Expr   // element offset into the SPM buffer
	// FrameStride gives the SPM-side stride per tensor dimension: region
	// element (i0..ik) lands at BufOff + Σ i_d·FrameStride[d]. nil means
	// packed row-major over the region extents.
	FrameStride []Expr
}

// DMAOp is an inferred asynchronous DMA operation (§4.1's swDMA): the
// functional payload is the embedded RegionMove; Reply names the reply word
// a DMAWait synchronizes on. PerCPE carries the derived per-CPE descriptor
// attributes for the code generator (offset/block/stride as formulas over
// rid/cid — they do not affect simulation, which re-derives exact geometry
// from the region at run time).
type DMAOp struct {
	Move  RegionMove
	Reply string
	// PerCPE holds codegen-facing attribute formulas (informational).
	PerCPE DMAAttrs
}

// DMAAttrs are the printed per-CPE descriptor attributes of Fig. 4 (right).
type DMAAttrs struct {
	Offset string
	Block  string
	Stride string
	Size   string
}

// DMAWait blocks until Times transfers under Reply have completed
// (§4.1's swDMAWait).
type DMAWait struct {
	Reply string
	Times Expr
}

// VecDim selects the vectorized dimension of the GEMM primitive (§4.1).
type VecDim int

// Vectorization choices.
const (
	// VecM vectorizes along the M loop.
	VecM VecDim = iota
	// VecN vectorizes along the N loop.
	VecN
)

func (v VecDim) String() string {
	if v == VecM {
		return "vecM"
	}
	return "vecN"
}

// Gemm invokes the spm_gemm tensorized primitive: C += A × B on SPM-resident
// operands. Matrices are column-major with explicit leading dimensions;
// ATrans/BTrans select the transposed-storage variants (together with
// VecDim these span the paper's eight assembly kernel variants).
type Gemm struct {
	A, B, C          string // SPM buffer names
	AOff, BOff, COff Expr   // element offsets into the buffers
	M, N, K          Expr
	LDA, LDB, LDC    Expr
	ATrans, BTrans   bool
	Vec              VecDim
	// Accumulate false clears C first (beta=0); true is C += (beta=1).
	Accumulate bool
	// Specialized marks the hand-tuned assembly variant manual libraries
	// (xMath) use on exactly-aligned shapes; swATOP's schedule space never
	// sets it (see DESIGN.md, baselines).
	Specialized bool
}

// TransformKind identifies an auxiliary tensorized kernel with its own
// functional and cost implementation in the primitives package.
type TransformKind int

// Transform kinds.
const (
	// ZeroFill clears Elems elements of an SPM buffer at BufOff.
	ZeroFill TransformKind = iota
	// CopySPM copies Elems elements between SPM buffers (strided copies of
	// the lightweight-padding scheme).
	CopySPM
	// WinoInputTile transforms input tiles into Winograd domain (CPE
	// vector kernel; operates on SPM buffers).
	WinoInputTile
	// WinoFilterTile transforms a filter tile into Winograd domain.
	WinoFilterTile
	// WinoOutputTile inverse-transforms an output tile.
	WinoOutputTile
	// WinoInputSlab transforms a 4-row input slab into 16 GEMM planes
	// (args: tilesC, ci, b).
	WinoInputSlab
	// WinoOutputSlab inverse-transforms 16 result planes into a 2-row
	// output slab (args: tilesC, b).
	WinoOutputSlab
)

func (k TransformKind) String() string {
	switch k {
	case ZeroFill:
		return "zerofill"
	case CopySPM:
		return "copy_spm"
	case WinoInputTile:
		return "wino_input"
	case WinoFilterTile:
		return "wino_filter"
	case WinoOutputTile:
		return "wino_output"
	case WinoInputSlab:
		return "wino_input_slab"
	case WinoOutputSlab:
		return "wino_output_slab"
	}
	return "?"
}

// Transform invokes an auxiliary kernel. Operand meaning depends on Kind;
// Args is a kind-specific list documented on the primitives implementing it.
type Transform struct {
	Kind TransformKind
	// Src/Dst name SPM buffers (or are empty when unused).
	Src, Dst       string
	SrcOff, DstOff Expr
	Args           []Expr
}

// Comment is a no-op annotation kept through to generated code.
type Comment struct{ Text string }

func (*For) isStmt()        {}
func (*If) isStmt()         {}
func (*Assign) isStmt()     {}
func (*AllocSPM) isStmt()   {}
func (*FreeSPM) isStmt()    {}
func (*RegionMove) isStmt() {}
func (*DMAOp) isStmt()      {}
func (*DMAWait) isStmt()    {}
func (*Gemm) isStmt()       {}
func (*Transform) isStmt()  {}
func (*Comment) isStmt()    {}

// CloneStmts deep-copies a statement list. Expressions are immutable and
// shared; statement structure is copied so passes can mutate freely.
func CloneStmts(body []Stmt) []Stmt {
	out := make([]Stmt, len(body))
	for i, s := range body {
		out[i] = CloneStmt(s)
	}
	return out
}

// CloneStmt deep-copies one statement.
func CloneStmt(s Stmt) Stmt {
	switch x := s.(type) {
	case *For:
		return &For{Iter: x.Iter, Extent: x.Extent, Body: CloneStmts(x.Body)}
	case *If:
		return &If{Cond: x.Cond, Then: CloneStmts(x.Then), Else: CloneStmts(x.Else)}
	case *Assign:
		c := *x
		return &c
	case *AllocSPM:
		c := *x
		return &c
	case *FreeSPM:
		c := *x
		return &c
	case *RegionMove:
		c := *x
		c.Start = append([]Expr(nil), x.Start...)
		c.Extent = append([]Expr(nil), x.Extent...)
		c.FrameStride = append([]Expr(nil), x.FrameStride...)
		return &c
	case *DMAOp:
		c := *x
		c.Move.Start = append([]Expr(nil), x.Move.Start...)
		c.Move.Extent = append([]Expr(nil), x.Move.Extent...)
		c.Move.FrameStride = append([]Expr(nil), x.Move.FrameStride...)
		return &c
	case *DMAWait:
		c := *x
		return &c
	case *Gemm:
		c := *x
		return &c
	case *Transform:
		c := *x
		c.Args = append([]Expr(nil), x.Args...)
		return &c
	case *Comment:
		c := *x
		return &c
	}
	panic(fmt.Sprintf("ir: CloneStmt on unknown stmt %T", s))
}

// Clone deep-copies a program.
func (p *Program) Clone() *Program {
	c := &Program{Name: p.Name, Body: CloneStmts(p.Body)}
	c.Tensors = append([]TensorDecl(nil), p.Tensors...)
	for i := range c.Tensors {
		c.Tensors[i].Dims = append([]int(nil), p.Tensors[i].Dims...)
		c.Tensors[i].Layout = append([]int(nil), p.Tensors[i].Layout...)
	}
	return c
}
