package ir

import (
	"fmt"
	"strings"
)

// Print renders a program as indented pseudo-code, the logical IR view of
// Fig. 4 (middle). It is the debugging surface and what golden tests match
// against.
func Print(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	for _, t := range p.Tensors {
		role := "in"
		if t.Output {
			role = "out"
		}
		fmt.Fprintf(&b, "  tensor %s%v %s\n", t.Name, t.Dims, role)
	}
	printStmts(&b, p.Body, 1)
	return b.String()
}

// PrintStmts renders a statement list (for tests on fragments).
func PrintStmts(body []Stmt) string {
	var b strings.Builder
	printStmts(&b, body, 0)
	return b.String()
}

func printStmts(b *strings.Builder, body []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range body {
		switch x := s.(type) {
		case *For:
			fmt.Fprintf(b, "%sfor %s in [0, %s):\n", ind, x.Iter, x.Extent)
			printStmts(b, x.Body, depth+1)
		case *If:
			fmt.Fprintf(b, "%sif %s:\n", ind, x.Cond)
			printStmts(b, x.Then, depth+1)
			if len(x.Else) > 0 {
				fmt.Fprintf(b, "%selse:\n", ind)
				printStmts(b, x.Else, depth+1)
			}
		case *Assign:
			fmt.Fprintf(b, "%s%s = %s\n", ind, x.Var, x.Val)
		case *AllocSPM:
			fmt.Fprintf(b, "%salloc_spm %s[%s]\n", ind, x.Buf, x.Elems)
		case *FreeSPM:
			fmt.Fprintf(b, "%sfree_spm %s\n", ind, x.Buf)
		case *RegionMove:
			fmt.Fprintf(b, "%sregion_%s %s%s -> %s+%s\n", ind, x.Dir, x.Tensor, regionStr(x.Start, x.Extent), x.Buf, x.BufOff)
		case *DMAOp:
			fmt.Fprintf(b, "%sdma_%s %s%s <-> %s+%s reply=%s\n", ind, x.Move.Dir, x.Move.Tensor,
				regionStr(x.Move.Start, x.Move.Extent), x.Move.Buf, x.Move.BufOff, x.Reply)
		case *DMAWait:
			fmt.Fprintf(b, "%sdma_wait %s x%s\n", ind, x.Reply, x.Times)
		case *Gemm:
			ta, tb := "", ""
			if x.ATrans {
				ta = "^T"
			}
			if x.BTrans {
				tb = "^T"
			}
			acc := "="
			if x.Accumulate {
				acc = "+="
			}
			fmt.Fprintf(b, "%sgemm %s+%s %s %s%s+%s x %s%s+%s [M=%s N=%s K=%s lda=%s ldb=%s ldc=%s %s]\n",
				ind, x.C, x.COff, acc, x.A, ta, x.AOff, x.B, tb, x.BOff, x.M, x.N, x.K, x.LDA, x.LDB, x.LDC, x.Vec)
		case *Transform:
			args := make([]string, len(x.Args))
			for i, a := range x.Args {
				args[i] = a.String()
			}
			fmt.Fprintf(b, "%s%s src=%s+%s dst=%s+%s (%s)\n", ind, x.Kind, x.Src, x.SrcOff, x.Dst, x.DstOff, strings.Join(args, ", "))
		case *Comment:
			fmt.Fprintf(b, "%s// %s\n", ind, x.Text)
		default:
			fmt.Fprintf(b, "%s<unknown %T>\n", ind, s)
		}
	}
}

func regionStr(start, extent []Expr) string {
	parts := make([]string, len(start))
	for i := range start {
		parts[i] = fmt.Sprintf("%s:+%s", start[i], extent[i])
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
