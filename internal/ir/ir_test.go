package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestExprEval(t *testing.T) {
	env := Env{"i": 7, "j": 3}
	cases := []struct {
		e    Expr
		want int64
	}{
		{Const(5), 5},
		{V("i"), 7},
		{Add(V("i"), V("j")), 10},
		{Sub(V("j"), V("i")), -4},
		{Mul(V("i"), Const(4)), 28},
		{Div(V("i"), V("j")), 2},
		{Div(Const(-7), Const(3)), -3}, // floor semantics
		{Mod(V("i"), V("j")), 1},
		{Mod(Const(-7), Const(3)), 2}, // non-negative
		{Min(V("i"), V("j")), 3},
		{Max(V("i"), V("j")), 7},
		{AddN(Const(1), V("j"), Const(2)), 6},
	}
	for i, c := range cases {
		if got := c.e.Eval(env); got != c.want {
			t.Errorf("case %d (%s): got %d, want %d", i, c.e, got, c.want)
		}
	}
}

func TestExprConstFolding(t *testing.T) {
	if _, ok := Add(Const(2), Const(3)).(ConstExpr); !ok {
		t.Fatal("const+const should fold")
	}
	if e := Add(V("i"), Const(0)); e.String() != "i" {
		t.Fatalf("i+0 should simplify, got %s", e)
	}
	if e := Mul(V("i"), Const(1)); e.String() != "i" {
		t.Fatalf("i*1 should simplify, got %s", e)
	}
	if e := Mul(V("i"), Const(0)); e.String() != "0" {
		t.Fatalf("i*0 should fold to 0, got %s", e)
	}
	if e := Div(V("i"), Const(1)); e.String() != "i" {
		t.Fatalf("i/1 should simplify, got %s", e)
	}
}

func TestExprUnboundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbound variable should panic")
		}
	}()
	V("ghost").Eval(Env{})
}

func TestDivModByZeroPanics(t *testing.T) {
	for _, e := range []Expr{&BinExpr{opDiv, Const(1), Const(0)}, &BinExpr{opMod, Const(1), Const(0)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("div/mod by zero should panic")
				}
			}()
			e.Eval(nil)
		}()
	}
}

func TestFreeVarsAndIsConst(t *testing.T) {
	e := Add(Mul(V("b"), Const(2)), Min(V("a"), V("b")))
	fv := FreeVars(e)
	if len(fv) != 2 || fv[0] != "a" || fv[1] != "b" {
		t.Fatalf("free vars = %v", fv)
	}
	if _, ok := IsConst(e); ok {
		t.Fatal("expr with vars is not const")
	}
	if v, ok := IsConst(Min(Const(3), Const(9))); !ok || v != 3 {
		t.Fatalf("IsConst(min(3,9)) = %d, %v", v, ok)
	}
}

func TestSubst(t *testing.T) {
	e := Add(Mul(V("i"), Const(16)), V("j"))
	s := Subst(e, map[string]Expr{"i": Add(V("i"), Const(1))})
	env := Env{"i": 2, "j": 5}
	if got := s.Eval(env); got != 3*16+5 {
		t.Fatalf("subst eval = %d", got)
	}
	// Original unchanged.
	if got := e.Eval(env); got != 2*16+5 {
		t.Fatalf("original mutated: %d", got)
	}
}

func TestCondEval(t *testing.T) {
	env := Env{"i": 4}
	cases := []struct {
		c    Cond
		want bool
	}{
		{Cond{LT, V("i"), Const(5)}, true},
		{Cond{LE, V("i"), Const(4)}, true},
		{Cond{GT, V("i"), Const(4)}, false},
		{Cond{GE, V("i"), Const(4)}, true},
		{Cond{EQ, V("i"), Const(4)}, true},
		{Cond{NE, V("i"), Const(4)}, false},
	}
	for i, c := range cases {
		if got := c.c.Eval(env); got != c.want {
			t.Errorf("case %d (%s): got %v", i, c.c, got)
		}
	}
}

// Property: floor-div and mod are consistent: l == r*div + mod, 0 <= mod < r.
func TestDivModConsistencyQuick(t *testing.T) {
	f := func(l int32, r0 uint8) bool {
		r := int64(r0%100) + 1
		le := Const(int64(l))
		re := Const(r)
		d := (&BinExpr{opDiv, le, re}).Eval(nil)
		m := (&BinExpr{opMod, le, re}).Eval(nil)
		return int64(l) == r*d+m && m >= 0 && m < r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func buildSample() *Program {
	inner := &Gemm{
		A: "a", B: "b", C: "c",
		AOff: Const(0), BOff: Const(0), COff: Const(0),
		M: Const(32), N: Const(32), K: V("kk"),
		LDA: Const(32), LDB: Const(32), LDC: Const(32),
		Vec: VecN, Accumulate: true,
	}
	return &Program{
		Name: "sample",
		Tensors: []TensorDecl{
			{Name: "A", Dims: []int{64, 64}},
			{Name: "C", Dims: []int{64, 64}, Output: true},
		},
		Body: []Stmt{
			&AllocSPM{Buf: "a", Elems: Const(1024)},
			&For{Iter: "i", Extent: Const(2), Body: []Stmt{
				&For{Iter: "j", Extent: Const(2), Body: []Stmt{
					&RegionMove{Tensor: "A", Dir: Get,
						Start:  []Expr{Mul(V("i"), Const(32)), Const(0)},
						Extent: []Expr{Const(32), Const(64)},
						Buf:    "a", BufOff: Const(0)},
					inner,
				}},
			}},
		},
	}
}

func TestWalkAndCount(t *testing.T) {
	p := buildSample()
	if n := CountKind(p.Body, func(s Stmt) bool { _, ok := s.(*For); return ok }); n != 2 {
		t.Fatalf("for count = %d", n)
	}
	if n := CountKind(p.Body, func(s Stmt) bool { _, ok := s.(*Gemm); return ok }); n != 1 {
		t.Fatalf("gemm count = %d", n)
	}
	// Skipping children works.
	seen := 0
	Walk(p.Body, func(s Stmt) bool {
		seen++
		_, isFor := s.(*For)
		return !isFor // do not descend into loops
	})
	if seen != 2 { // alloc + outer for
		t.Fatalf("walk with skip visited %d nodes", seen)
	}
}

func TestLoopNest(t *testing.T) {
	p := buildSample()
	nest := LoopNest(p.Body)
	if len(nest) != 2 || nest[0].Iter != "i" || nest[1].Iter != "j" {
		names := make([]string, len(nest))
		for i, f := range nest {
			names[i] = f.Iter
		}
		t.Fatalf("nest = %v", names)
	}
	if f := FindLoop(p.Body, "j"); f == nil || f.Iter != "j" {
		t.Fatal("FindLoop failed")
	}
	if f := FindLoop(p.Body, "zz"); f != nil {
		t.Fatal("FindLoop found ghost loop")
	}
}

func TestRewriteDeletesAndReplaces(t *testing.T) {
	p := buildSample()
	// Delete all RegionMoves.
	p.Body = Rewrite(p.Body, func(s Stmt) []Stmt {
		if _, ok := s.(*RegionMove); ok {
			return []Stmt{}
		}
		return nil
	})
	if n := CountKind(p.Body, func(s Stmt) bool { _, ok := s.(*RegionMove); return ok }); n != 0 {
		t.Fatal("rewrite did not delete RegionMoves")
	}
	// Replace gemm by two comments.
	p.Body = Rewrite(p.Body, func(s Stmt) []Stmt {
		if _, ok := s.(*Gemm); ok {
			return []Stmt{&Comment{"a"}, &Comment{"b"}}
		}
		return nil
	})
	if n := CountKind(p.Body, func(s Stmt) bool { _, ok := s.(*Comment); return ok }); n != 2 {
		t.Fatal("rewrite did not replace gemm")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := buildSample()
	c := p.Clone()
	// Mutate clone's nested loop extent.
	LoopNest(c.Body)[1].Extent = Const(99)
	if LoopNest(p.Body)[1].Extent.Eval(nil) != 2 {
		t.Fatal("clone shares loop structure")
	}
	c.Tensors[0].Dims[0] = 1
	if p.Tensors[0].Dims[0] != 64 {
		t.Fatal("clone shares tensor dims")
	}
}

func TestPrintContainsStructure(t *testing.T) {
	p := buildSample()
	out := Print(p)
	for _, want := range []string{
		"program sample",
		"tensor A[64 64] in",
		"tensor C[64 64] out",
		"for i in [0, 2):",
		"region_get A[(i * 32):+32, 0:+64] -> a+0",
		"gemm c+0 += a+0 x b+0",
		"vecN",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed IR missing %q:\n%s", want, out)
		}
	}
}

func TestPrintAllNodeKinds(t *testing.T) {
	body := []Stmt{
		&Assign{Var: "next_i", Val: Add(V("i"), Const(1))},
		&If{Cond: Cond{EQ, V("next_i"), Const(4)},
			Then: []Stmt{&Assign{Var: "next_i", Val: Const(0)}},
			Else: []Stmt{&Comment{"steady"}}},
		&DMAOp{Move: RegionMove{Tensor: "A", Dir: Get,
			Start: []Expr{Const(0)}, Extent: []Expr{Const(8)}, Buf: "a", BufOff: Const(0)},
			Reply: "r0"},
		&DMAWait{Reply: "r0", Times: Const(1)},
		&Transform{Kind: ZeroFill, Dst: "a", DstOff: Const(0), SrcOff: Const(0), Args: []Expr{Const(16)}},
		&FreeSPM{Buf: "a"},
	}
	out := PrintStmts(body)
	for _, want := range []string{"next_i = (i + 1)", "if next_i == 4:", "else:", "dma_get", "dma_wait r0 x1", "zerofill", "free_spm a"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed fragment missing %q:\n%s", want, out)
		}
	}
}

func TestCloneAllKinds(t *testing.T) {
	body := []Stmt{
		&Assign{Var: "x", Val: Const(1)},
		&AllocSPM{Buf: "b", Elems: Const(4)},
		&FreeSPM{Buf: "b"},
		&RegionMove{Tensor: "T", Start: []Expr{Const(0)}, Extent: []Expr{Const(1)}, Buf: "b", BufOff: Const(0)},
		&DMAOp{Move: RegionMove{Tensor: "T", Start: []Expr{Const(0)}, Extent: []Expr{Const(1)}, Buf: "b", BufOff: Const(0)}, Reply: "r"},
		&DMAWait{Reply: "r", Times: Const(1)},
		&Gemm{A: "a", B: "b", C: "c", AOff: Const(0), BOff: Const(0), COff: Const(0), M: Const(4), N: Const(4), K: Const(4), LDA: Const(4), LDB: Const(4), LDC: Const(4)},
		&Transform{Kind: CopySPM, Src: "a", Dst: "b", SrcOff: Const(0), DstOff: Const(0), Args: []Expr{Const(4)}},
		&Comment{"hi"},
		&If{Cond: Cond{LT, Const(0), Const(1)}, Then: []Stmt{&Comment{"t"}}},
	}
	cl := CloneStmts(body)
	if len(cl) != len(body) {
		t.Fatalf("clone length %d vs %d", len(cl), len(body))
	}
	// Mutating a cloned RegionMove's Start must not affect the original.
	cl[3].(*RegionMove).Start[0] = Const(9)
	if body[3].(*RegionMove).Start[0].Eval(nil) != 0 {
		t.Fatal("RegionMove clone shares Start slice")
	}
}
