package conv

import (
	"testing"

	"swatop/internal/dsl"
	"swatop/internal/exec"
	"swatop/internal/ir"
	"swatop/internal/tensor"
)

func implicitStrategy(fno, fni, fco int, vec ir.VecDim, outLayout []int) dsl.Strategy {
	return dsl.Strategy{
		Factors:      map[string]int{"no": fno, "ni": fni, "co": fco, "b": 0},
		Order:        []string{"ro", "co", "no", "kr", "kc", "ni"},
		Layouts:      map[string][]int{"out": outLayout},
		Vec:          vec,
		DoubleBuffer: true,
	}
}

// runImplicit compiles, runs functionally and checks against the direct
// convolution oracle. The strategy's b factor is patched to the full batch.
func runImplicit(t *testing.T, s Shape, st dsl.Strategy) exec.Result {
	t.Helper()
	st.Factors["b"] = s.B
	op, err := NewImplicitOp(s)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := op.Compile(st)
	if err != nil {
		t.Fatalf("compile %v: %v", st, err)
	}
	binds, err := Bind(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(prog, binds, exec.Options{Functional: true})
	if err != nil {
		t.Fatalf("exec %v: %v\n%s", st, err, ir.Print(prog))
	}
	want, err := tensor.ReferenceConv(binds["in"], binds["weight"], s)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := tensor.MaxAbsDiff(want, binds["out"]); d > 5e-2 {
		t.Fatalf("strategy %v: differs from direct conv by %g", st, d)
	}
	return res
}

func TestImplicitConvBasic(t *testing.T) {
	s := Shape{B: 4, Ni: 16, No: 16, Ro: 6, Co: 6, Kr: 3, Kc: 3}
	runImplicit(t, s, implicitStrategy(16, 16, 2, ir.VecN, []int{0, 1, 2, 3}))
}

func TestImplicitConvOutputLayouts(t *testing.T) {
	s := Shape{B: 4, Ni: 16, No: 16, Ro: 6, Co: 6, Kr: 3, Kc: 3}
	// Batch-fastest output (transposed-C path) and No-fastest output.
	runImplicit(t, s, implicitStrategy(16, 16, 2, ir.VecN, []int{0, 1, 2, 3}))
	runImplicit(t, s, implicitStrategy(16, 16, 2, ir.VecM, []int{1, 2, 3, 0}))
}

func TestImplicitConvInputWeightLayouts(t *testing.T) {
	s := Shape{B: 4, Ni: 16, No: 16, Ro: 4, Co: 4, Kr: 3, Kc: 3}
	for _, wl := range [][]int{{0, 1, 2, 3}, {1, 2, 3, 0}} {
		for _, il := range [][]int{{0, 1, 2, 3}, {1, 2, 3, 0}} {
			st := implicitStrategy(16, 16, 2, ir.VecN, []int{0, 1, 2, 3})
			st.Layouts["weight"] = wl
			st.Layouts["in"] = il
			runImplicit(t, s, st)
		}
	}
}

func TestImplicitConvBoundaryTiles(t *testing.T) {
	// Ni=24 with tile 16 → K boundary; No=20 with tile 16 → M boundary;
	// Co=5 with fusion 2 → N boundary (and a 5th odd column).
	s := Shape{B: 4, Ni: 24, No: 20, Ro: 5, Co: 5, Kr: 3, Kc: 3}
	runImplicit(t, s, implicitStrategy(16, 16, 2, ir.VecN, []int{0, 1, 2, 3}))
	runImplicit(t, s, implicitStrategy(16, 16, 2, ir.VecM, []int{1, 2, 3, 0}))
}

func TestImplicitConvBatchOne(t *testing.T) {
	// The inference case swDNN has no manual implementation for: N comes
	// entirely from column fusion.
	s := Shape{B: 1, Ni: 16, No: 16, Ro: 8, Co: 8, Kr: 3, Kc: 3}
	runImplicit(t, s, implicitStrategy(16, 16, 4, ir.VecN, []int{0, 1, 2, 3}))
}

func TestImplicitConv1x1Kernel(t *testing.T) {
	// ResNet's 1×1 convolutions: no reduce loops at all.
	s := Shape{B: 4, Ni: 32, No: 16, Ro: 4, Co: 4, Kr: 1, Kc: 1}
	runImplicit(t, s, implicitStrategy(16, 16, 2, ir.VecN, []int{0, 1, 2, 3}))
}

func TestImplicitRejectsTinyNi(t *testing.T) {
	if _, err := NewImplicitOp(Shape{B: 1, Ni: 3, No: 16, Ro: 4, Co: 4, Kr: 3, Kc: 3}); err == nil {
		t.Fatal("Ni=3 must be rejected (first-layer exclusion)")
	}
}

func TestImplicitFusionWidensGemm(t *testing.T) {
	s := Shape{B: 4, Ni: 16, No: 16, Ro: 8, Co: 8, Kr: 3, Kc: 3}
	narrow := runImplicit(t, s, implicitStrategy(16, 16, 1, ir.VecN, []int{0, 1, 2, 3}))
	wide := runImplicit(t, s, implicitStrategy(16, 16, 4, ir.VecN, []int{0, 1, 2, 3}))
	if wide.Counters.GemmCalls >= narrow.Counters.GemmCalls {
		t.Fatalf("fusion should reduce GEMM call count: %d vs %d",
			wide.Counters.GemmCalls, narrow.Counters.GemmCalls)
	}
	if wide.Seconds >= narrow.Seconds {
		t.Fatalf("fusion should pay off here: wide %.3g vs narrow %.3g", wide.Seconds, narrow.Seconds)
	}
}

func TestImplicitFastLoopsCloseToExact(t *testing.T) {
	s := Shape{B: 4, Ni: 32, No: 32, Ro: 16, Co: 16, Kr: 3, Kc: 3}
	op, err := NewImplicitOp(s)
	if err != nil {
		t.Fatal(err)
	}
	st := implicitStrategy(32, 32, 2, ir.VecN, []int{0, 1, 2, 3})
	st.Factors["b"] = s.B
	prog, err := op.Compile(st)
	if err != nil {
		t.Fatal(err)
	}
	bv1, _ := exec.BindVirtual(prog)
	exact, err := exec.Run(prog, bv1, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bv2, _ := exec.BindVirtual(prog)
	fast, err := exec.Run(prog, bv2, exec.Options{FastLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	rel := fast.Seconds/exact.Seconds - 1
	if rel < -0.05 || rel > 0.05 {
		t.Fatalf("fast-loop time %.4g vs exact %.4g (%.1f%% off)", fast.Seconds, exact.Seconds, rel*100)
	}
}
