package conv

import (
	"fmt"

	"swatop/internal/core"
	"swatop/internal/dsl"
	"swatop/internal/ir"
	"swatop/internal/lower"
	"swatop/internal/primitives"
)

// WinogradOp is the Winograd F(2×2,3×3) convolution (Fig. 2 middle): the
// filters and 4×4 input tiles are transformed into the Winograd domain, the
// 16 element-wise product planes become 16 batched GEMMs
//
//	M[xi][No × P] = U[xi][No × Ni] × V[xi][Ni × P],   P = (Ro/2)(Co/2)B
//
// and the result planes are inverse-transformed into 2×2 output tiles. The
// method applies to 3×3 stride-1 kernels with even output extents.
type WinogradOp struct {
	S     Shape
	seed  *dsl.Seed
	space *dsl.Space
	// TransformChunkCap caps the channels-per-DMA chunking of the
	// transform phases (0 = automatic SPM-budget sizing). The manual
	// baseline sets 1, modelling an unfused implementation that moves one
	// channel slab per transfer.
	TransformChunkCap int
}

// WinogradApplies reports whether the method handles a shape.
func WinogradApplies(s Shape) bool {
	return s.Kr == 3 && s.Kc == 3 && s.Ro%2 == 0 && s.Co%2 == 0
}

// NewWinogradOp builds the operator and its schedule space.
func NewWinogradOp(s Shape) (*WinogradOp, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !WinogradApplies(s) {
		return nil, fmt.Errorf("winograd conv: needs 3×3 kernel and even output extents, got %v", s)
	}
	p := (s.Ro / 2) * (s.Co / 2) * s.B
	seed := dsl.NewSeed(fmt.Sprintf("winograd_conv_%s", shapeTag(s)))
	seed.AddAxis("xi", primitives.WinoPlanes, dsl.RoleSpatial)
	seed.AddAxis("no", s.No, dsl.RoleM)
	seed.AddAxis("p", p, dsl.RoleN)
	seed.AddAxis("ni", s.Ni, dsl.RoleK)
	seed.AddTensor("U", []int{primitives.WinoPlanes, s.No, s.Ni}, dsl.OperandA,
		dsl.Dim("xi"), dsl.Dim("no"), dsl.Dim("ni"))
	seed.AddTensor("V", []int{primitives.WinoPlanes, s.Ni, p}, dsl.OperandB,
		dsl.Dim("xi"), dsl.Dim("ni"), dsl.Dim("p"))
	seed.AddTensor("M", []int{primitives.WinoPlanes, s.No, p}, dsl.OperandC,
		dsl.Dim("xi"), dsl.Dim("no"), dsl.Dim("p"))

	sp := dsl.NewSpace()
	sp.Factors["no"] = tileMenu(s.No, []int{32, 64, 128})
	sp.Factors["ni"] = tileMenu(s.Ni, []int{32, 64, 128})
	sp.Factors["p"] = tileMenu(p, []int{256, 512, 1024})
	sp.Reorder("xi", "no", "p", "ni")
	sp.Reorder("xi", "p", "no", "ni")
	sp.Layout("U", 0, 1, 2)
	sp.Layout("U", 0, 2, 1)
	sp.Layout("V", 0, 1, 2)
	sp.Layout("M", 0, 1, 2)
	sp.Layout("M", 0, 2, 1)
	return &WinogradOp{S: s, seed: seed, space: sp}, nil
}

// Name identifies the operator instance.
func (o *WinogradOp) Name() string { return o.seed.Name }

// Seed returns the GEMM-phase schedule seed.
func (o *WinogradOp) Seed() *dsl.Seed { return o.seed }

// Space returns the schedule space.
func (o *WinogradOp) Space() *dsl.Space { return o.space }

func (o *WinogradOp) capChunk(ch int) int {
	if o.TransformChunkCap > 0 && ch > o.TransformChunkCap {
		return o.TransformChunkCap
	}
	return ch
}

// Compile assembles and optimizes the four-phase program for one strategy.
func (o *WinogradOp) Compile(st dsl.Strategy) (*ir.Program, error) {
	prog, err := o.CompileRaw(st)
	if err != nil {
		return nil, err
	}
	return core.Optimize(prog, st)
}

// CompileRaw assembles the program without running the IR optimizer —
// baseline builders mutate the raw structure first.
func (o *WinogradOp) CompileRaw(st dsl.Strategy) (*ir.Program, error) {
	s := o.S
	plan, err := lower.NewPlan(o.seed, st)
	if err != nil {
		return nil, err
	}
	nest, err := plan.BuildNest()
	if err != nil {
		return nil, err
	}

	tilesR, tilesC := s.Ro/2, s.Co/2
	p := tilesR * tilesC * s.B
	cnt := tilesC * s.B // transformed values per (row of tiles)
	planes := primitives.WinoPlanes

	prog := &ir.Program{Name: o.Name()}
	prog.Tensors = []ir.TensorDecl{
		{Name: "in", Dims: []int{s.Ni, s.Ri(), s.Ci(), s.B}},
		{Name: "weight", Dims: []int{s.No, s.Ni, s.Kr, s.Kc}},
		{Name: "out", Dims: []int{s.No, s.Ro, s.Co, s.B}, Output: true},
		{Name: "U", Dims: []int{planes, s.No, s.Ni}, Scratch: true, Layout: plan.Layout("U")},
		{Name: "V", Dims: []int{planes, s.Ni, p}, Scratch: true, Layout: plan.Layout("V")},
		{Name: "M", Dims: []int{planes, s.No, p}, Scratch: true, Layout: plan.Layout("M")},
	}

	var body []ir.Stmt

	// Phase chunk sizes: pick the largest channel chunk whose SPM buffers
	// (double-buffered by the prefetch pass) stay within ~40 KB per CPE.
	// CG-level element budget = 40 KB/CPE × 64 CPE ÷ 4 B ÷ 2 (double
	// buffering) = 320 K floats.
	const phaseBudgetElems = 320 * 1024

	// Phase F: filter transform — 9 source + 16 destination floats per
	// (no, ni) filter.
	chF := maxInt(1, phaseBudgetElems/(s.Ni*25))
	if chF > s.No {
		chF = s.No
	}
	chF = o.capChunk(chF)
	nF := (s.No + chF - 1) / chF
	f0 := ir.Mul(ir.V("wch"), ir.Const(int64(chF)))
	fExt := ir.Expr(ir.Const(int64(chF)))
	if s.No%chF != 0 {
		fExt = ir.Min(ir.Const(int64(chF)), ir.Sub(ir.Const(int64(s.No)), f0))
	}
	cntF := ir.Mul(fExt, ir.Const(int64(s.Ni)))
	body = append(body,
		&ir.Comment{Text: "phase F: filter transform U = G·g·Gᵀ"},
		&ir.AllocSPM{Buf: "spm_wf", Elems: ir.Const(int64(chF * s.Ni * 9))},
		&ir.AllocSPM{Buf: "spm_uf", Elems: ir.Const(int64(chF * s.Ni * planes))},
		&ir.For{Iter: "wch", Extent: ir.Const(int64(nF)), Body: []ir.Stmt{
			&ir.RegionMove{Tensor: "weight", Dir: ir.Get,
				Start:  []ir.Expr{f0, ir.Const(0), ir.Const(0), ir.Const(0)},
				Extent: []ir.Expr{fExt, ir.Const(int64(s.Ni)), ir.Const(3), ir.Const(3)},
				Buf:    "spm_wf", BufOff: ir.Const(0)},
			&ir.Transform{Kind: ir.WinoFilterTile, Src: "spm_wf", Dst: "spm_uf",
				SrcOff: ir.Const(0), DstOff: ir.Const(0), Args: []ir.Expr{cntF}},
			&ir.RegionMove{Tensor: "U", Dir: ir.Put,
				Start:  []ir.Expr{ir.Const(0), f0, ir.Const(0)},
				Extent: []ir.Expr{ir.Const(int64(planes)), fExt, ir.Const(int64(s.Ni))},
				Buf:    "spm_uf", BufOff: ir.Const(0),
				FrameStride: []ir.Expr{cntF, ir.Const(int64(s.Ni)), ir.Const(1)}},
		}},
		&ir.FreeSPM{Buf: "spm_wf"},
		&ir.FreeSPM{Buf: "spm_uf"},
	)

	// Phase I: input transform. Channels are chunked so one DMA moves
	// several 4-row slabs (amortizing start-up latency); one transform
	// call produces the GEMM-ready planes for the whole chunk.
	slabElems := 4 * s.Ci() * s.B
	chI := maxInt(1, phaseBudgetElems/(slabElems+planes*cnt))
	if chI > s.Ni {
		chI = s.Ni
	}
	chI = o.capChunk(chI)
	nI := (s.Ni + chI - 1) / chI
	i0 := ir.Mul(ir.V("ich"), ir.Const(int64(chI)))
	iExt := ir.Expr(ir.Const(int64(chI)))
	if s.Ni%chI != 0 {
		iExt = ir.Min(ir.Const(int64(chI)), ir.Sub(ir.Const(int64(s.Ni)), i0))
	}
	body = append(body,
		&ir.Comment{Text: "phase I: input transform V = Bᵀ·d·B"},
		&ir.AllocSPM{Buf: "spm_slab", Elems: ir.Const(int64(chI * slabElems))},
		&ir.AllocSPM{Buf: "spm_v", Elems: ir.Const(int64(planes * chI * cnt))},
		&ir.For{Iter: "ich", Extent: ir.Const(int64(nI)), Body: []ir.Stmt{
			&ir.For{Iter: "itr", Extent: ir.Const(int64(tilesR)), Body: []ir.Stmt{
				&ir.RegionMove{Tensor: "in", Dir: ir.Get,
					Start:  []ir.Expr{i0, ir.Mul(ir.V("itr"), ir.Const(2)), ir.Const(0), ir.Const(0)},
					Extent: []ir.Expr{iExt, ir.Const(4), ir.Const(int64(s.Ci())), ir.Const(int64(s.B))},
					Buf:    "spm_slab", BufOff: ir.Const(0)},
				&ir.Transform{Kind: ir.WinoInputSlab, Src: "spm_slab", Dst: "spm_v",
					SrcOff: ir.Const(0), DstOff: ir.Const(0),
					Args: []ir.Expr{iExt, ir.Const(int64(tilesC)), ir.Const(int64(s.Ci())), ir.Const(int64(s.B))}},
				&ir.RegionMove{Tensor: "V", Dir: ir.Put,
					Start:  []ir.Expr{ir.Const(0), i0, ir.Mul(ir.V("itr"), ir.Const(int64(cnt)))},
					Extent: []ir.Expr{ir.Const(int64(planes)), iExt, ir.Const(int64(cnt))},
					Buf:    "spm_v", BufOff: ir.Const(0),
					FrameStride: []ir.Expr{ir.Mul(iExt, ir.Const(int64(cnt))), ir.Const(int64(cnt)), ir.Const(1)}},
			}},
		}},
		&ir.FreeSPM{Buf: "spm_slab"},
		&ir.FreeSPM{Buf: "spm_v"},
	)

	// Phase G: the 16 batched GEMMs.
	body = append(body, &ir.Comment{Text: "phase G: 16 batched GEMMs M[xi] = U[xi]·V[xi]"})
	body = append(body, nest...)

	// Phase O: inverse transform, output channels chunked like phase I.
	outSlab := 2 * s.Co * s.B
	chO := maxInt(1, phaseBudgetElems/(outSlab+planes*cnt))
	if chO > s.No {
		chO = s.No
	}
	chO = o.capChunk(chO)
	nO := (s.No + chO - 1) / chO
	o0 := ir.Mul(ir.V("och"), ir.Const(int64(chO)))
	oExt := ir.Expr(ir.Const(int64(chO)))
	if s.No%chO != 0 {
		oExt = ir.Min(ir.Const(int64(chO)), ir.Sub(ir.Const(int64(s.No)), o0))
	}
	body = append(body,
		&ir.Comment{Text: "phase O: output transform Y = Aᵀ·m·A"},
		&ir.AllocSPM{Buf: "spm_m", Elems: ir.Const(int64(planes * chO * cnt))},
		&ir.AllocSPM{Buf: "spm_y", Elems: ir.Const(int64(chO * outSlab))},
		&ir.For{Iter: "och", Extent: ir.Const(int64(nO)), Body: []ir.Stmt{
			&ir.For{Iter: "otr", Extent: ir.Const(int64(tilesR)), Body: []ir.Stmt{
				&ir.RegionMove{Tensor: "M", Dir: ir.Get,
					Start:  []ir.Expr{ir.Const(0), o0, ir.Mul(ir.V("otr"), ir.Const(int64(cnt)))},
					Extent: []ir.Expr{ir.Const(int64(planes)), oExt, ir.Const(int64(cnt))},
					Buf:    "spm_m", BufOff: ir.Const(0),
					FrameStride: []ir.Expr{ir.Mul(oExt, ir.Const(int64(cnt))), ir.Const(int64(cnt)), ir.Const(1)}},
				&ir.Transform{Kind: ir.WinoOutputSlab, Src: "spm_m", Dst: "spm_y",
					SrcOff: ir.Const(0), DstOff: ir.Const(0),
					Args: []ir.Expr{oExt, ir.Const(int64(tilesC)), ir.Const(int64(s.B))}},
				&ir.RegionMove{Tensor: "out", Dir: ir.Put,
					Start:  []ir.Expr{o0, ir.Mul(ir.V("otr"), ir.Const(2)), ir.Const(0), ir.Const(0)},
					Extent: []ir.Expr{oExt, ir.Const(2), ir.Const(int64(s.Co)), ir.Const(int64(s.B))},
					Buf:    "spm_y", BufOff: ir.Const(0)},
			}},
		}},
		&ir.FreeSPM{Buf: "spm_m"},
		&ir.FreeSPM{Buf: "spm_y"},
	)

	prog.Body = body
	return prog, nil
}
