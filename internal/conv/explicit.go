package conv

import (
	"fmt"

	"swatop/internal/core"
	"swatop/internal/dsl"
	"swatop/internal/ir"
	"swatop/internal/lower"
	"swatop/internal/tensor"
)

// ExplicitOp is the explicit-GEMM convolution (Fig. 2 left): phase one
// materializes the im2col column matrix in main memory through SPM, phase
// two runs one large tiled GEMM:
//
//	out2d[No × Ro·Co·B] = weight2d[No × Ni·Kr·Kc] × col[Ni·Kr·Kc × Ro·Co·B]
//
// The extra main-memory round trip is the method's intrinsic cost — it is
// why its efficiency trails the other two methods in Fig. 8.
type ExplicitOp struct {
	S     Shape
	seed  *dsl.Seed // the GEMM-phase seed; its axes name the tunables
	space *dsl.Space
}

// NewExplicitOp builds the operator and its schedule space.
func NewExplicitOp(s Shape) (*ExplicitOp, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	kk := s.Ni * s.Kr * s.Kc
	nn := s.Ro * s.Co * s.B
	seed := dsl.NewSeed(fmt.Sprintf("explicit_conv_%s", shapeTag(s)))
	seed.AddAxis("m", s.No, dsl.RoleM)
	seed.AddAxis("n", nn, dsl.RoleN)
	seed.AddAxis("k", kk, dsl.RoleK)
	seed.AddTensor("weight2d", []int{s.No, kk}, dsl.OperandA, dsl.Dim("m"), dsl.Dim("k"))
	seed.AddTensor("col", []int{kk, nn}, dsl.OperandB, dsl.Dim("k"), dsl.Dim("n"))
	seed.AddTensor("out2d", []int{s.No, nn}, dsl.OperandC, dsl.Dim("m"), dsl.Dim("n"))

	sp := dsl.NewSpace()
	sp.Factors["m"] = tileMenu(s.No, []int{32, 64, 128})
	sp.Factors["n"] = tileMenu(nn, []int{256, 512, 1024})
	sp.Factors["k"] = tileMenu(kk, []int{64, 128, 256})
	sp.Reorder("m", "n", "k")
	sp.Reorder("n", "m", "k")
	sp.Layout("weight2d", 0, 1)
	sp.Layout("weight2d", 1, 0)
	sp.Layout("col", 0, 1)
	sp.Layout("out2d", 0, 1)
	sp.Layout("out2d", 1, 0)
	return &ExplicitOp{S: s, seed: seed, space: sp}, nil
}

// Name identifies the operator instance.
func (o *ExplicitOp) Name() string { return o.seed.Name }

// Seed returns the GEMM-phase schedule seed.
func (o *ExplicitOp) Seed() *dsl.Seed { return o.seed }

// Space returns the schedule space.
func (o *ExplicitOp) Space() *dsl.Space { return o.space }

// Compile assembles the two-phase program for one strategy.
func (o *ExplicitOp) Compile(st dsl.Strategy) (*ir.Program, error) {
	s := o.S
	plan, err := lower.NewPlan(o.seed, st)
	if err != nil {
		return nil, err
	}
	nest, err := plan.BuildNest()
	if err != nil {
		return nil, err
	}

	kk := s.Ni * s.Kr * s.Kc
	nn := s.Ro * s.Co * s.B
	prog := &ir.Program{Name: o.Name()}
	prog.Tensors = []ir.TensorDecl{
		{Name: "in", Dims: []int{s.Ni, s.Ri(), s.Ci(), s.B}},
		{Name: "weight2d", Dims: []int{s.No, kk}, Layout: plan.Layout("weight2d")},
		{Name: "col", Dims: []int{kk, nn}, Scratch: true, Layout: plan.Layout("col")},
		{Name: "out2d", Dims: []int{s.No, nn}, Output: true, Layout: plan.Layout("out2d")},
	}

	// Phase 1: im2col. For every (ni, kr, kc) and a chunk of output rows,
	// one Get from the (pre-padded) input and one Put into the column
	// matrix — the shifted-window copy that defines im2col.
	chunk := maxInt(1, 128*1024/(s.Co*s.B))
	if chunk > s.Ro {
		chunk = s.Ro
	}
	nchunks := (s.Ro + chunk - 1) / chunk
	rowExt := ir.Expr(ir.Const(int64(chunk)))
	r0 := ir.Mul(ir.V("rch"), ir.Const(int64(chunk)))
	if s.Ro%chunk != 0 {
		rowExt = ir.Min(ir.Const(int64(chunk)), ir.Sub(ir.Const(int64(s.Ro)), r0))
	}
	bufElems := chunk * s.Co * s.B
	get := &ir.RegionMove{
		Tensor: "in", Dir: ir.Get,
		Start:  []ir.Expr{ir.V("cni"), ir.Add(r0, ir.V("ckr")), ir.V("ckc"), ir.Const(0)},
		Extent: []ir.Expr{ir.Const(1), rowExt, ir.Const(int64(s.Co)), ir.Const(int64(s.B))},
		Buf:    "spm_im2col", BufOff: ir.Const(0),
	}
	colRow := ir.Add(ir.Mul(ir.Add(ir.Mul(ir.V("cni"), ir.Const(int64(s.Kr))), ir.V("ckr")), ir.Const(int64(s.Kc))), ir.V("ckc"))
	put := &ir.RegionMove{
		Tensor: "col", Dir: ir.Put,
		Start:  []ir.Expr{colRow, ir.Mul(r0, ir.Const(int64(s.Co*s.B)))},
		Extent: []ir.Expr{ir.Const(1), ir.Mul(rowExt, ir.Const(int64(s.Co*s.B)))},
		Buf:    "spm_im2col", BufOff: ir.Const(0),
	}
	im2col := []ir.Stmt{
		&ir.Comment{Text: "phase 1: im2col materialization"},
		&ir.AllocSPM{Buf: "spm_im2col", Elems: ir.Const(int64(bufElems))},
		&ir.For{Iter: "cni", Extent: ir.Const(int64(s.Ni)), Body: []ir.Stmt{
			&ir.For{Iter: "ckr", Extent: ir.Const(int64(s.Kr)), Body: []ir.Stmt{
				&ir.For{Iter: "ckc", Extent: ir.Const(int64(s.Kc)), Body: []ir.Stmt{
					&ir.For{Iter: "rch", Extent: ir.Const(int64(nchunks)), Body: []ir.Stmt{get, put}},
				}},
			}},
		}},
		&ir.FreeSPM{Buf: "spm_im2col"},
	}

	prog.Body = append(im2col, &ir.Comment{Text: "phase 2: tiled GEMM"})
	prog.Body = append(prog.Body, nest...)
	return core.Optimize(prog, st)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ExplicitWeight2D flattens a 4-D filter into the (No, Ni·Kr·Kc) matrix
// operand (identity layout), preserving values.
func ExplicitWeight2D(w *tensor.Tensor, s Shape) (*tensor.Tensor, error) {
	return tensor.FilterMatrix(w, s)
}

// ExplicitOutput4D scatters the 2-D result back into (No, Ro, Co, B).
func ExplicitOutput4D(out2d *tensor.Tensor, s Shape) (*tensor.Tensor, error) {
	return tensor.OutputFromMatrix(out2d, s)
}
