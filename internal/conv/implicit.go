// Package conv defines swATOP's three tensorized convolution operators
// (§3, Fig. 2): implicit-GEMM (direct convolution with the innermost loops
// replaced by GEMM primitives, Alg. 2), explicit-GEMM (im2col
// materialization + one large GEMM), and Winograd F(2×2,3×3) (tile
// transforms + 16 batched GEMMs). All three are tunable operators; all
// three are verified against the direct-convolution oracle.
//
// Convolutions are stride-1 with spatially pre-padded inputs
// (Ri = Ro+Kr−1), the configuration the paper's evaluation uses.
package conv

import (
	"fmt"

	"swatop/internal/core"
	"swatop/internal/dsl"
	"swatop/internal/ir"
	"swatop/internal/tensor"
)

// Shape re-exports the convolution geometry.
type Shape = tensor.ConvShape

// ImplicitOp is the implicit-GEMM convolution operator (Alg. 2). The batch
// dimension and a fusable run of output columns form the GEMM N dimension:
// choosing a co tile factor > 1 is exactly the paper's loop fusion
// ("merging loops into GEMM primitives" — n independent matrix products
// sharing the same filter become one wider product).
type ImplicitOp struct {
	S     Shape
	seed  *dsl.Seed
	space *dsl.Space
}

// MinNiImplicit is the smallest input-channel count the implicit method
// accepts (the paper excludes first layers whose Ni "is too small to be
// handled by implicit CONV").
const MinNiImplicit = 16

// NewImplicitOp builds the operator and its schedule space.
func NewImplicitOp(s Shape) (*ImplicitOp, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Ni < MinNiImplicit {
		return nil, fmt.Errorf("implicit conv: Ni=%d below the method's minimum %d", s.Ni, MinNiImplicit)
	}
	seed := dsl.NewSeed(fmt.Sprintf("implicit_conv_%s", shapeTag(s)))
	seed.AddAxis("no", s.No, dsl.RoleM)
	seed.AddAxis("co", s.Co, dsl.RoleN)
	seed.AddAxis("b", s.B, dsl.RoleN)
	seed.AddAxis("ni", s.Ni, dsl.RoleK)
	seed.AddAxis("ro", s.Ro, dsl.RoleSpatial)
	seed.AddAxis("kr", s.Kr, dsl.RoleReduce)
	seed.AddAxis("kc", s.Kc, dsl.RoleReduce)
	seed.AddTensor("weight", []int{s.No, s.Ni, s.Kr, s.Kc}, dsl.OperandA,
		dsl.Dim("no"), dsl.Dim("ni"), dsl.Dim("kr"), dsl.Dim("kc"))
	seed.AddTensor("in", []int{s.Ni, s.Ri(), s.Ci(), s.B}, dsl.OperandB,
		dsl.Dim("ni"), dsl.Dims(dsl.T("ro", 1), dsl.T("kr", 1)),
		dsl.Dims(dsl.T("co", 1), dsl.T("kc", 1)), dsl.Dim("b"))
	seed.AddTensor("out", []int{s.No, s.Ro, s.Co, s.B}, dsl.OperandC,
		dsl.Dim("no"), dsl.Dim("ro"), dsl.Dim("co"), dsl.Dim("b"))

	sp := dsl.NewSpace()
	sp.Factors["no"] = tileMenu(s.No, []int{32, 64, 128})
	sp.Factors["ni"] = tileMenu(s.Ni, []int{32, 64, 128})
	sp.Factors["co"] = fusionMenu(s.Co, s.B)
	sp.Factors["b"] = []int{s.B} // batch always fully fused into N
	// Loop-order candidates: Alg. 2's spatial-outer order and an
	// output-channel-outer order.
	sp.Reorder("ro", "co", "no", "kr", "kc", "ni")
	sp.Reorder("no", "ro", "co", "kr", "kc", "ni")
	// Weight layouts (filters are pre-packed offline, so this is a free
	// choice): kernel-offset-major with Ni fastest (transposed A) or with
	// No fastest (plain A).
	sp.Layout("weight", 2, 3, 0, 1)
	sp.Layout("weight", 2, 3, 1, 0)
	// Input and output keep the framework's batch-fastest layout: feature
	// maps must interoperate with neighbouring layers, so their layout is
	// not a per-operator tuning knob.
	sp.Layout("in", 0, 1, 2, 3)
	sp.Layout("out", 0, 1, 2, 3)
	return &ImplicitOp{S: s, seed: seed, space: sp}, nil
}

// fusionMenu lists co-fusion factors: enough columns to give the GEMM a
// healthy N even at batch 1 (where fusion is the only source of width),
// never more than the row.
func fusionMenu(co, b int) []int {
	var out []int
	for _, f := range []int{1, 2, 4, 8, 16, 32, 64} {
		if f <= co && f*b <= 2048 {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

func tileMenu(extent int, menu []int) []int {
	var out []int
	for _, f := range menu {
		if f < extent {
			out = append(out, f)
		}
	}
	if extent <= menu[len(menu)-1] {
		out = append(out, extent)
	}
	if len(out) == 0 {
		out = []int{extent}
	}
	return out
}

func shapeTag(s Shape) string {
	return fmt.Sprintf("b%d_ni%d_no%d_r%dx%d_k%dx%d", s.B, s.Ni, s.No, s.Ro, s.Co, s.Kr, s.Kc)
}

// Name identifies the operator instance.
func (o *ImplicitOp) Name() string { return o.seed.Name }

// Seed returns the schedule seed.
func (o *ImplicitOp) Seed() *dsl.Seed { return o.seed }

// Space returns the schedule space.
func (o *ImplicitOp) Space() *dsl.Space { return o.space }

// Compile lowers one strategy.
func (o *ImplicitOp) Compile(st dsl.Strategy) (*ir.Program, error) {
	return core.Compile(o.seed, st)
}

// Bind allocates operand tensors with the layouts a compiled program chose,
// inputs filled with a deterministic pattern.
func Bind(prog *ir.Program) (map[string]*tensor.Tensor, error) {
	binds := map[string]*tensor.Tensor{}
	for _, decl := range prog.Tensors {
		if decl.Scratch {
			continue
		}
		layout := decl.Layout
		if layout == nil {
			layout = make([]int, len(decl.Dims))
			for i := range layout {
				layout[i] = i
			}
		}
		t, err := tensor.NewWithLayout(decl.Name, decl.Dims, layout)
		if err != nil {
			return nil, err
		}
		if !decl.Output {
			t.FillPattern()
		}
		binds[decl.Name] = t
	}
	return binds, nil
}
