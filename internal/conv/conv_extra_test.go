package conv

import (
	"strings"
	"testing"
	"testing/quick"

	"swatop/internal/dsl"
	"swatop/internal/exec"
	"swatop/internal/ir"
	"swatop/internal/tensor"
)

// Property: the implicit conv pipeline is correct for random small shapes
// and random fusion/tile choices.
func TestImplicitConvPropertyQuick(t *testing.T) {
	f := func(b0, ni0, no0, r0, fno0, fni0, fco0, vec0 uint8) bool {
		s := Shape{
			B:  int(b0%4)*2 + 2, // 2..8, even
			Ni: int(ni0%2)*16 + 16,
			No: int(no0%3)*8 + 8,
			Ro: int(r0%3)*2 + 4,
			Co: int(r0%3)*2 + 4,
			Kr: 3, Kc: 3,
		}
		fnos := []int{8, 16, 24}
		fnis := []int{16, 32}
		fcos := []int{1, 2, 4}
		st := dsl.Strategy{
			Factors: map[string]int{
				"no": minInt(fnos[int(fno0)%3], s.No),
				"ni": minInt(fnis[int(fni0)%2], s.Ni),
				"co": minInt(fcos[int(fco0)%3], s.Co),
				"b":  s.B,
			},
			Order:        []string{"ro", "co", "no", "kr", "kc", "ni"},
			Layouts:      map[string][]int{"out": {0, 1, 2, 3}},
			Vec:          ir.VecDim(int(vec0) % 2),
			DoubleBuffer: true,
		}
		op, err := NewImplicitOp(s)
		if err != nil {
			return false
		}
		prog, err := op.Compile(st)
		if err != nil {
			return true // pruned (vec alignment etc.)
		}
		binds, err := Bind(prog)
		if err != nil {
			return false
		}
		if _, err := exec.Run(prog, binds, exec.Options{Functional: true}); err != nil {
			t.Logf("exec %v %v: %v", s, st, err)
			return false
		}
		want, err := tensor.ReferenceConv(binds["in"], binds["weight"], s)
		if err != nil {
			return false
		}
		if d, _ := tensor.MaxAbsDiff(want, binds["out"]); d > 5e-2 {
			t.Logf("wrong by %g: %v %v", d, s, st)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestImplicitSpaceSizesPaperBand(t *testing.T) {
	// The paper reports average schedule-space sizes of ~350-450 per conv
	// layer (Table 3); our spaces should be the same order of magnitude.
	op, err := NewImplicitOp(Shape{B: 32, Ni: 256, No: 256, Ro: 28, Co: 28, Kr: 3, Kc: 3})
	if err != nil {
		t.Fatal(err)
	}
	raw := 1
	for _, f := range op.Space().Factors {
		raw *= len(f)
	}
	raw *= len(op.Space().Orders) * len(op.Space().Vecs)
	for _, l := range op.Space().Layouts {
		raw *= len(l)
	}
	if raw < 100 || raw > 2000 {
		t.Fatalf("raw space %d outside the paper's order of magnitude", raw)
	}
}

func TestWinogradChunkCap(t *testing.T) {
	s := Shape{B: 2, Ni: 16, No: 16, Ro: 8, Co: 8, Kr: 3, Kc: 3}
	op, err := NewWinogradOp(s)
	if err != nil {
		t.Fatal(err)
	}
	st := winogradStrategy(16, 16, 32, ir.VecM)
	free, err := op.Compile(st)
	if err != nil {
		t.Fatal(err)
	}
	op.TransformChunkCap = 1
	capped, err := op.Compile(st)
	if err != nil {
		t.Fatal(err)
	}
	bf, _ := exec.BindVirtual(free)
	rf, err := exec.Run(free, bf, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bc, _ := exec.BindVirtual(capped)
	rc, err := exec.Run(capped, bc, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rc.Seconds <= rf.Seconds {
		t.Fatalf("chunk cap 1 should be slower: %.3g vs %.3g", rc.Seconds, rf.Seconds)
	}
	if rc.Counters.DMAOps <= rf.Counters.DMAOps {
		t.Fatal("chunk cap 1 should issue more DMA operations")
	}
}

func TestExplicitHelpers(t *testing.T) {
	s := Shape{B: 2, Ni: 3, No: 4, Ro: 5, Co: 5, Kr: 3, Kc: 3}
	w := tensor.NewConvFilter(s)
	w.FillPattern()
	w2, err := ExplicitWeight2D(w, s)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Dims[0] != s.No || w2.Dims[1] != s.Ni*9 {
		t.Fatalf("weight2d dims %v", w2.Dims)
	}
	if w2.At(1, (1*s.Kr+1)*s.Kc+1) != w.At(1, 1, 1, 1) {
		t.Fatal("weight flattening order wrong")
	}
	m := tensor.New("m", s.No, s.Ro*s.Co*s.B)
	m.FillPattern()
	out4, err := ExplicitOutput4D(m, s)
	if err != nil {
		t.Fatal(err)
	}
	if out4.At(2, 1, 3, 1) != m.At(2, (1*s.Co+3)*s.B+1) {
		t.Fatal("output scatter order wrong")
	}
}

func TestImplicitIRShowsAlgorithm2Structure(t *testing.T) {
	// Golden-ish check: the lowered implicit conv shows the paper's Alg. 2
	// structure — spatial loops outside, DMA-fed GEMM primitives inside.
	s := Shape{B: 32, Ni: 64, No: 64, Ro: 8, Co: 8, Kr: 3, Kc: 3}
	op, err := NewImplicitOp(s)
	if err != nil {
		t.Fatal(err)
	}
	st := implicitStrategy(64, 64, 2, ir.VecN, []int{0, 1, 2, 3})
	st.Factors["b"] = s.B
	prog, err := op.Compile(st)
	if err != nil {
		t.Fatal(err)
	}
	out := ir.Print(prog)
	for _, want := range []string{
		"for cro in [0, 8):",
		"for ckr in [0, 3):",
		"gemm",
		"dma_get",
		"dma_put",
		"nx_", // auto-prefetching next-iteration inference
	} {
		if !strings.Contains(out, want) {
			t.Errorf("implicit conv IR missing %q", want)
		}
	}
}
