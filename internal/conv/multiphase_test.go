package conv

import (
	"testing"

	"swatop/internal/dsl"
	"swatop/internal/exec"
	"swatop/internal/ir"
	"swatop/internal/tensor"
)

func explicitStrategy(fm, fn, fk int, vec ir.VecDim) dsl.Strategy {
	return dsl.Strategy{
		Factors:      map[string]int{"m": fm, "n": fn, "k": fk},
		Order:        []string{"m", "n", "k"},
		Layouts:      map[string][]int{"weight2d": {0, 1}, "col": {0, 1}, "out2d": {1, 0}},
		Vec:          vec,
		DoubleBuffer: true,
	}
}

func runExplicit(t *testing.T, s Shape, st dsl.Strategy) exec.Result {
	t.Helper()
	op, err := NewExplicitOp(s)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := op.Compile(st)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	binds, err := Bind(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(prog, binds, exec.Options{Functional: true})
	if err != nil {
		t.Fatalf("exec: %v\n%s", err, ir.Print(prog))
	}
	// Oracle: reconstruct the 4-D weight from the bound 2-D operand.
	w4 := tensor.NewConvFilter(s)
	for no := 0; no < s.No; no++ {
		for ni := 0; ni < s.Ni; ni++ {
			for kr := 0; kr < s.Kr; kr++ {
				for kc := 0; kc < s.Kc; kc++ {
					w4.Set(binds["weight2d"].At(no, (ni*s.Kr+kr)*s.Kc+kc), no, ni, kr, kc)
				}
			}
		}
	}
	want, err := tensor.ReferenceConv(binds["in"], w4, s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExplicitOutput4D(binds["out2d"], s)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := tensor.MaxAbsDiff(want, got); d > 5e-2 {
		t.Fatalf("explicit conv differs from direct conv by %g", d)
	}
	return res
}

func TestExplicitConvBasic(t *testing.T) {
	s := Shape{B: 2, Ni: 4, No: 8, Ro: 6, Co: 6, Kr: 3, Kc: 3}
	runExplicit(t, s, explicitStrategy(8, 24, 12, ir.VecM))
}

func TestExplicitConvBoundariesAndLayouts(t *testing.T) {
	s := Shape{B: 3, Ni: 5, No: 10, Ro: 5, Co: 7, Kr: 3, Kc: 3}
	st := explicitStrategy(8, 32, 16, ir.VecM)
	runExplicit(t, s, st)
	st.Layouts["weight2d"] = []int{1, 0}
	st.Layouts["out2d"] = []int{0, 1} // transposed-C path
	st.Vec = ir.VecN
	runExplicit(t, s, st)
}

func TestExplicitConvSmallNi(t *testing.T) {
	// The first-layer case (Ni=3) that implicit conv rejects: explicit
	// handles it — the paper uses explicit where the others cannot apply.
	s := Shape{B: 2, Ni: 3, No: 8, Ro: 8, Co: 8, Kr: 3, Kc: 3}
	runExplicit(t, s, explicitStrategy(8, 32, 9, ir.VecM))
}

func winogradStrategy(fno, fni, fp int, vec ir.VecDim) dsl.Strategy {
	return dsl.Strategy{
		Factors:      map[string]int{"no": fno, "ni": fni, "p": fp},
		Order:        []string{"xi", "no", "p", "ni"},
		Layouts:      map[string][]int{"U": {0, 1, 2}, "V": {0, 1, 2}, "M": {0, 1, 2}},
		Vec:          vec,
		DoubleBuffer: true,
	}
}

func runWinograd(t *testing.T, s Shape, st dsl.Strategy) exec.Result {
	t.Helper()
	op, err := NewWinogradOp(s)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := op.Compile(st)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	binds, err := Bind(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(prog, binds, exec.Options{Functional: true})
	if err != nil {
		t.Fatalf("exec: %v\n%s", err, ir.Print(prog))
	}
	want, err := tensor.ReferenceConv(binds["in"], binds["weight"], s)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := tensor.MaxAbsDiff(want, binds["out"]); d > 5e-2 {
		t.Fatalf("winograd conv differs from direct conv by %g", d)
	}
	return res
}

func TestWinogradConvBasic(t *testing.T) {
	s := Shape{B: 2, Ni: 4, No: 8, Ro: 6, Co: 6, Kr: 3, Kc: 3}
	runWinograd(t, s, winogradStrategy(8, 4, 12, ir.VecM))
}

func TestWinogradConvLayoutsAndVec(t *testing.T) {
	s := Shape{B: 2, Ni: 4, No: 8, Ro: 4, Co: 8, Kr: 3, Kc: 3}
	st := winogradStrategy(8, 4, 16, ir.VecM)
	runWinograd(t, s, st)
	st.Layouts = map[string][]int{"U": {0, 2, 1}, "V": {0, 1, 2}, "M": {0, 2, 1}}
	runWinograd(t, s, st)
	st.Vec = ir.VecN
	runWinograd(t, s, st)
}

func TestWinogradConvBoundaryTiles(t *testing.T) {
	// ni=6 with tile 4 → K boundary; p=24 with tile 16 → N boundary.
	s := Shape{B: 2, Ni: 6, No: 8, Ro: 6, Co: 4, Kr: 3, Kc: 3}
	st := winogradStrategy(8, 4, 8, ir.VecM)
	runWinograd(t, s, st)
}

func TestWinogradRejectsInapplicable(t *testing.T) {
	if _, err := NewWinogradOp(Shape{B: 1, Ni: 4, No: 4, Ro: 7, Co: 8, Kr: 3, Kc: 3}); err == nil {
		t.Fatal("odd Ro must be rejected")
	}
	if _, err := NewWinogradOp(Shape{B: 1, Ni: 4, No: 4, Ro: 8, Co: 8, Kr: 5, Kc: 5}); err == nil {
		t.Fatal("5×5 kernel must be rejected")
	}
	if !WinogradApplies(Shape{B: 1, Ni: 4, No: 4, Ro: 8, Co: 8, Kr: 3, Kc: 3}) {
		t.Fatal("8×8 3×3 should apply")
	}
}

func TestWinogradBeatsExplicitOnItsHomeTurf(t *testing.T) {
	// Same shape, timed-only: the Winograd method's arithmetic saving must
	// show up against the explicit method (2.25× fewer multiplies).
	s := Shape{B: 8, Ni: 32, No: 32, Ro: 16, Co: 16, Kr: 3, Kc: 3}
	wop, err := NewWinogradOp(s)
	if err != nil {
		t.Fatal(err)
	}
	wprog, err := wop.Compile(winogradStrategy(32, 32, 256, ir.VecM))
	if err != nil {
		t.Fatal(err)
	}
	wb, _ := exec.BindVirtual(wprog)
	wres, err := exec.Run(wprog, wb, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eop, err := NewExplicitOp(s)
	if err != nil {
		t.Fatal(err)
	}
	eprog, err := eop.Compile(explicitStrategy(32, 512, 128, ir.VecM))
	if err != nil {
		t.Fatal(err)
	}
	eb, _ := exec.BindVirtual(eprog)
	eres, err := exec.Run(eprog, eb, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if wres.Seconds >= eres.Seconds {
		t.Fatalf("winograd %.3g should beat explicit %.3g here", wres.Seconds, eres.Seconds)
	}
}
