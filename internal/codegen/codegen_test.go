package codegen

import (
	"strings"
	"testing"

	"swatop/internal/core"
	"swatop/internal/dsl"
	"swatop/internal/gemm"
	"swatop/internal/ir"
	"swatop/internal/lower"
)

func compileGemm(t *testing.T, p gemm.Params, db bool) *ir.Program {
	t.Helper()
	seed, err := gemm.Seed(p)
	if err != nil {
		t.Fatal(err)
	}
	st := dsl.Strategy{
		Factors:      map[string]int{"m": 32, "n": 32, "k": 32},
		Order:        []string{"m", "n", "k"},
		Layouts:      map[string][]int{"C": {1, 0}},
		Vec:          ir.VecM,
		DoubleBuffer: db,
	}
	prog, err := core.Compile(seed, st)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestEmitCStructure(t *testing.T) {
	prog := compileGemm(t, gemm.Params{M: 64, N: 64, K: 64}, true)
	src, err := EmitC(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"__thread_local float spm_region[",
		"#define spm_A (spm_region + 0)",
		"void gemm_64x64x64(float *A, float *B, float *C)",
		"athread_row()",
		"swDMA(",
		"swDMAWait(",
		"spm_gemm_",
		"SW_VEC_M",
		"for (long cm = 0; cm < 2; cm++)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated C missing %q\n%s", want, src)
		}
	}
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Fatal("unbalanced braces in generated C")
	}
	if strings.Count(src, "(") != strings.Count(src, ")") {
		t.Fatal("unbalanced parentheses in generated C")
	}
}

func TestEmitCDoubleBufferArtifacts(t *testing.T) {
	prog := compileGemm(t, gemm.Params{M: 128, N: 128, K: 128}, true)
	src, err := EmitC(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Next-iteration inference and parity offsets appear in the code.
	for _, want := range []string{"nx_ck", "g_ck", "% 2)"} {
		if !strings.Contains(src, want) {
			t.Errorf("prefetching artifact %q missing from generated C", want)
		}
	}
	// The doubled frames are reflected in the region size: all three
	// 32×32 frames double-buffered (inputs prefetched, output put async).
	if !strings.Contains(src, "spm_region[6144]") {
		t.Errorf("coalesced region size wrong:\n%s", firstLines(src, 12))
	}
}

func TestEmitCBoundaryMin(t *testing.T) {
	prog := compileGemm(t, gemm.Params{M: 50, N: 44, K: 38}, false)
	src, err := EmitC(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "min(") {
		t.Error("boundary extents should appear as min() in generated C")
	}
	if !strings.Contains(src, "spm_zerofill(") {
		t.Error("lightweight padding zero-fill missing")
	}
}

func TestEmitCRejectsUninferredMoves(t *testing.T) {
	seed, _ := gemm.Seed(gemm.Params{M: 32, N: 32, K: 32})
	st := dsl.Strategy{
		Factors: map[string]int{"m": 32, "n": 32, "k": 32},
		Layouts: map[string][]int{"C": {1, 0}},
		Vec:     ir.VecM,
	}
	prog, err := lower.Lower(seed, st) // no optimizer passes
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EmitC(prog); err == nil {
		t.Fatal("un-inferred RegionMoves must be rejected")
	}
}

func TestEmitCSpecializedKernelName(t *testing.T) {
	prog := compileGemm(t, gemm.Params{M: 64, N: 64, K: 64}, false)
	ir.Walk(prog.Body, func(s ir.Stmt) bool {
		if g, ok := s.(*ir.Gemm); ok {
			g.Specialized = true
		}
		return true
	})
	src, err := EmitC(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "_asm256(") {
		t.Error("specialized kernel name missing")
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
