package codegen

import (
	"strings"
	"testing"

	"swatop/internal/conv"
	"swatop/internal/dsl"
	"swatop/internal/ir"
)

// The code generator must handle every node kind the three convolution
// lowerings produce — including the Winograd transform calls and the
// multi-phase structure.
func TestEmitCWinogradProgram(t *testing.T) {
	s := conv.Shape{B: 8, Ni: 32, No: 32, Ro: 16, Co: 16, Kr: 3, Kc: 3}
	op, err := conv.NewWinogradOp(s)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := op.Compile(dsl.Strategy{
		Factors:      map[string]int{"no": 32, "ni": 32, "p": 256},
		Order:        []string{"xi", "no", "p", "ni"},
		Layouts:      map[string][]int{"U": {0, 1, 2}, "V": {0, 1, 2}, "M": {0, 1, 2}},
		Vec:          ir.VecM,
		DoubleBuffer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := EmitC(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"phase F: filter transform",
		"phase I: input transform",
		"phase G: 16 batched GEMMs",
		"phase O: output transform",
		"sw_wino_filter(",
		"sw_wino_input_slab(",
		"sw_wino_output_slab(",
		"spm_gemm_",
		"float *in, float *weight, float *out, float *U, float *V, float *M",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("winograd C missing %q", want)
		}
	}
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Fatal("unbalanced braces")
	}
}

func TestEmitCImplicitConvProgram(t *testing.T) {
	s := conv.Shape{B: 32, Ni: 64, No: 64, Ro: 14, Co: 14, Kr: 3, Kc: 3}
	op, err := conv.NewImplicitOp(s)
	if err != nil {
		t.Fatal(err)
	}
	st := dsl.Strategy{
		Factors:      map[string]int{"no": 64, "ni": 64, "co": 2, "b": 32},
		Order:        []string{"ro", "co", "no", "kr", "kc", "ni"},
		Layouts:      map[string][]int{"weight": {2, 3, 0, 1}, "in": {0, 1, 2, 3}, "out": {0, 1, 2, 3}},
		Vec:          ir.VecN,
		DoubleBuffer: true,
	}
	prog, err := op.Compile(st)
	if err != nil {
		t.Fatal(err)
	}
	src, err := EmitC(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"for (long cro = 0; cro < 14; cro++)",
		"for (long ckr = 0; ckr < 3; ckr++)",
		// The batch-fastest output layout routes through the transposed-C
		// formulation, flipping the user-level vecN to primitive vecM.
		"SW_VEC_M",
		"// dma get in",
		"// dma put out",
		"if (nx_cro <", // prefetch validity guard (outermost chain iterator)
	} {
		if !strings.Contains(src, want) {
			t.Errorf("implicit conv C missing %q\n%s", want, src[:min(len(src), 2000)])
		}
	}
}

func TestEmitCExplicitConvProgram(t *testing.T) {
	s := conv.Shape{B: 4, Ni: 8, No: 16, Ro: 8, Co: 8, Kr: 3, Kc: 3}
	op, err := conv.NewExplicitOp(s)
	if err != nil {
		t.Fatal(err)
	}
	st := dsl.Strategy{
		Factors:      map[string]int{"m": 16, "n": 64, "k": 72},
		Order:        []string{"m", "n", "k"},
		Layouts:      map[string][]int{"weight2d": {0, 1}, "col": {0, 1}, "out2d": {1, 0}},
		Vec:          ir.VecM,
		DoubleBuffer: true,
	}
	prog, err := op.Compile(st)
	if err != nil {
		t.Fatal(err)
	}
	src, err := EmitC(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"phase 1: im2col materialization", "phase 2: tiled GEMM", "col"} {
		if !strings.Contains(src, want) {
			t.Errorf("explicit conv C missing %q", want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
